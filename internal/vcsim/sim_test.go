package vcsim

// Tests for the incremental Sim lifecycle. The central property is the
// batch/incremental equivalence: feeding a pre-generated release list to
// an incremental Sim one Inject at a time and stepping it manually must
// produce step-for-step identical per-message delivery times to the batch
// Run wrapper, for every arbitration policy. That equivalence is what
// lets the open-loop traffic engine reuse every correctness guarantee the
// batch engine's differential reference tests establish.

import (
	"errors"
	"testing"
	"testing/quick"

	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/topology"
)

// incrementalRun replays a batch workload through the incremental API:
// inject everything up front, then single-step until done.
func incrementalRun(t *testing.T, set *message.Set, releases []int, cfg Config) Result {
	t.Helper()
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 1 << 20
	}
	sim, err := NewSim(set.G, cfg)
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	for i := 0; i < set.Len(); i++ {
		rel := 0
		if releases != nil {
			rel = releases[i]
		}
		if _, err := sim.Inject(set.Get(message.ID(i)), rel); err != nil {
			t.Fatalf("Inject %d: %v", i, err)
		}
	}
	for sim.Active() > 0 {
		if err := sim.Step(); err != nil {
			break
		}
	}
	return sim.Result()
}

// TestIncrementalMatchesBatchAllPolicies is the differential test the
// refactor is pinned by: random butterfly workloads with staggered
// releases, across all three arbitration policies (including ArbRandom,
// whose shuffle stream must be identical in both modes because idle
// steps draw nothing).
func TestIncrementalMatchesBatchAllPolicies(t *testing.T) {
	for _, pol := range []Policy{ArbByID, ArbRandom, ArbAge} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			f := func(seed uint64) bool {
				r := rng.New(seed)
				n := 8 << (seed % 2)
				bf := topology.NewButterfly(n)
				set := message.NewSet(bf.G)
				var releases []int
				m := 2 + r.Intn(3*n)
				for i := 0; i < m; i++ {
					src, dst := r.Intn(n), r.Intn(n)
					set.Add(bf.Input(src), bf.Output(dst), 1+r.Intn(8), bf.Route(src, dst))
					releases = append(releases, r.Intn(30))
				}
				cfg := Config{
					VirtualChannels:     1 + r.Intn(3),
					RestrictedBandwidth: r.Bool(),
					DropOnDelay:         r.Bool(),
					Arbitration:         pol,
					Seed:                seed,
					CheckInvariants:     true,
				}
				batch := Run(set, releases, cfg)
				inc := incrementalRun(t, set, releases, cfg)
				if batch.Steps != inc.Steps || batch.Delivered != inc.Delivered ||
					batch.Dropped != inc.Dropped || batch.Deadlocked != inc.Deadlocked ||
					batch.TotalStalls != inc.TotalStalls || batch.FlitHops != inc.FlitHops {
					t.Logf("seed %d: batch{steps %d del %d drop %d stalls %d hops %d} inc{steps %d del %d drop %d stalls %d hops %d}",
						seed, batch.Steps, batch.Delivered, batch.Dropped, batch.TotalStalls, batch.FlitHops,
						inc.Steps, inc.Delivered, inc.Dropped, inc.TotalStalls, inc.FlitHops)
					return false
				}
				for i := range batch.PerMessage {
					b, c := batch.PerMessage[i], inc.PerMessage[i]
					if b != c {
						t.Logf("seed %d msg %d: batch %+v inc %+v", seed, i, b, c)
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestIncrementalLateInjection checks that messages injected mid-run (not
// up front) behave identically to a batch run with the same release list:
// the engine must not care when it learns about a future release.
func TestIncrementalLateInjection(t *testing.T) {
	bf := topology.NewButterfly(8)
	r := rng.New(7)
	set := message.NewSet(bf.G)
	var releases []int
	for i := 0; i < 20; i++ {
		src, dst := r.Intn(8), r.Intn(8)
		set.Add(bf.Input(src), bf.Output(dst), 3, bf.Route(src, dst))
		releases = append(releases, r.Intn(25))
	}
	cfg := Config{VirtualChannels: 2, Arbitration: ArbAge, MaxSteps: 4096, CheckInvariants: true}
	batch := Run(set, releases, cfg)

	sim, err := NewSim(bf.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Inject each message in the step its release arrives, in ID order
	// within a step — the order the batch engine admits them.
	for sim.Active() > 0 || sim.Injected() < set.Len() {
		for i := 0; i < set.Len(); i++ {
			if releases[i] == sim.Now() {
				if _, err := sim.Inject(set.Get(message.ID(i)), releases[i]); err != nil {
					t.Fatalf("Inject %d at %d: %v", i, sim.Now(), err)
				}
			}
		}
		if err := sim.Step(); err != nil {
			t.Fatalf("Step at %d: %v", sim.Now(), err)
		}
	}
	inc := sim.Result()
	// Late injection renumbers nothing here (IDs assigned in release
	// order differ from batch IDs), so compare order-insensitive
	// aggregates plus the delivery-time multiset.
	if batch.Steps != inc.Steps || batch.Delivered != inc.Delivered || batch.TotalStalls != inc.TotalStalls {
		t.Fatalf("aggregates differ: batch{%d %d %d} inc{%d %d %d}",
			batch.Steps, batch.Delivered, batch.TotalStalls, inc.Steps, inc.Delivered, inc.TotalStalls)
	}
	count := map[[2]int]int{}
	for _, st := range batch.PerMessage {
		count[[2]int{st.Release, st.DeliverTime}]++
	}
	for _, st := range inc.PerMessage {
		count[[2]int{st.Release, st.DeliverTime}]--
	}
	for k, v := range count {
		if v != 0 {
			t.Fatalf("delivery multiset differs at (release=%d, deliver=%d): %+d", k[0], k[1], v)
		}
	}
}

func TestNewSimRequiresHorizon(t *testing.T) {
	bf := topology.NewButterfly(4)
	if _, err := NewSim(bf.G, Config{VirtualChannels: 1}); !errors.Is(err, ErrNoHorizon) {
		t.Fatalf("MaxSteps=0: got %v, want ErrNoHorizon", err)
	}
	if _, err := NewSim(bf.G, Config{VirtualChannels: 0, MaxSteps: 10}); err == nil {
		t.Fatal("VirtualChannels=0: expected an error")
	}
	if _, err := NewSim(bf.G, Config{VirtualChannels: 1, MaxSteps: 10}); err != nil {
		t.Fatalf("valid config: %v", err)
	}
}

func TestStepHorizonError(t *testing.T) {
	bf := topology.NewButterfly(4)
	sim, err := NewSim(bf.G, Config{VirtualChannels: 1, MaxSteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sim.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if err := sim.Step(); !errors.Is(err, ErrHorizon) {
		t.Fatalf("step at horizon: got %v, want ErrHorizon", err)
	}
	if !sim.Truncated() || !sim.Result().Truncated {
		t.Fatal("horizon overrun must mark the result Truncated")
	}
}

func TestStepDeadlockError(t *testing.T) {
	set := deadlockSet()
	sim, err := NewSim(set.G, Config{VirtualChannels: 1, MaxSteps: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < set.Len(); i++ {
		if _, err := sim.Inject(set.Get(message.ID(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	var sawDeadlock bool
	for i := 0; i < 1024; i++ {
		if err := sim.Step(); err != nil {
			if !errors.Is(err, ErrDeadlocked) {
				t.Fatalf("got %v, want ErrDeadlocked", err)
			}
			sawDeadlock = true
			break
		}
	}
	if !sawDeadlock {
		t.Fatal("deadlock never surfaced through Step")
	}
	if err := sim.Step(); !errors.Is(err, ErrDeadlocked) {
		t.Fatalf("post-deadlock step: got %v, want sticky ErrDeadlocked", err)
	}
	if !sim.Deadlocked() {
		t.Fatal("Deadlocked() must report true")
	}
	// The frozen worms never complete: Active must keep counting them
	// rather than reporting an empty network.
	if got := sim.Active(); got != set.Len() {
		t.Fatalf("Active() after deadlock = %d, want %d frozen worms", got, set.Len())
	}
}

// TestDrainHonorsHorizon: Drain's idle fast-forward must truncate at the
// MaxSteps horizon rather than jumping past it and executing steps there
// (the bound Step() enforces must bind Drain too).
func TestDrainHonorsHorizon(t *testing.T) {
	bf := topology.NewButterfly(4)
	sim, err := NewSim(bf.G, Config{VirtualChannels: 1, MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	msg := message.Message{Src: bf.Input(0), Dst: bf.Output(3), Length: 2, Path: bf.Route(0, 3)}
	if _, err := sim.Inject(msg, 1_000_000); err != nil {
		t.Fatal(err)
	}
	sim.Drain()
	res := sim.Result()
	if !res.Truncated {
		t.Fatal("release beyond the horizon must truncate")
	}
	if res.Steps > 100 || sim.Now() > 100 {
		t.Fatalf("Drain ran to step %d (result %d), past MaxSteps=100", sim.Now(), res.Steps)
	}
	if res.Delivered != 0 {
		t.Fatal("nothing can deliver past the horizon")
	}
}

func TestInjectValidation(t *testing.T) {
	bf := topology.NewButterfly(4)
	sim, err := NewSim(bf.G, Config{VirtualChannels: 1, MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	msg := message.Message{Src: bf.Input(0), Dst: bf.Output(3), Length: 2, Path: bf.Route(0, 3)}
	for i := 0; i < 5; i++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sim.Inject(msg, 3); err == nil {
		t.Fatal("release in the past must be rejected")
	}
	if _, err := sim.Inject(message.Message{Length: 0}, 5); err == nil {
		t.Fatal("zero-length message must be rejected")
	}
	bad := msg
	bad.Path = graph.Path{graph.EdgeID(bf.G.NumEdges() + 3)}
	if _, err := sim.Inject(bad, 5); err == nil {
		t.Fatal("out-of-range path edge must be rejected")
	}
	if _, err := sim.Inject(msg, 5); err != nil {
		t.Fatalf("valid inject: %v", err)
	}
}

func TestIdleStepsAdvanceTime(t *testing.T) {
	bf := topology.NewButterfly(4)
	sim, err := NewSim(bf.G, Config{VirtualChannels: 1, MaxSteps: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if sim.Now() != 10 {
		t.Fatalf("Now() = %d after 10 idle steps, want 10", sim.Now())
	}
	if sim.Active() != 0 || sim.Deadlocked() {
		t.Fatal("idle stepping must not fabricate work or deadlocks")
	}
}

// TestOnCompleteCallback checks the completion stream: exactly one call
// per message, with final stats, in both batch and incremental modes,
// for deliveries and drops alike.
func TestOnCompleteCallback(t *testing.T) {
	bf := topology.NewButterfly(8)
	r := rng.New(3)
	set := message.NewSet(bf.G)
	for i := 0; i < 24; i++ {
		src, dst := r.Intn(8), r.Intn(8)
		set.Add(bf.Input(src), bf.Output(dst), 4, bf.Route(src, dst))
	}
	for _, drop := range []bool{false, true} {
		got := map[message.ID]MessageStats{}
		calls := 0
		cfg := Config{
			VirtualChannels: 1,
			DropOnDelay:     drop,
			OnComplete: func(id message.ID, st MessageStats) {
				calls++
				if _, dup := got[id]; dup {
					t.Fatalf("drop=%v: message %d completed twice", drop, id)
				}
				got[id] = st
			},
		}
		res := Run(set, nil, cfg)
		if calls != set.Len() {
			t.Fatalf("drop=%v: %d completions for %d messages", drop, calls, set.Len())
		}
		for i := range res.PerMessage {
			if got[message.ID(i)] != res.PerMessage[i] {
				t.Fatalf("drop=%v: message %d callback stats %+v != result stats %+v",
					drop, i, got[message.ID(i)], res.PerMessage[i])
			}
		}
	}
}
