package vcsim

// Differential tests for the event-horizon fast-forward API:
// Sim.NextEventTime and Sim.StepTo. The contract under test is exact —
// StepTo is byte-for-byte equivalent to calling Step in a loop, with the
// idle spans it jumps being provably pure clock — so the tests run a
// fast-forwarded simulator in lockstep with a Step-driven twin and demand
// identical Result snapshots at every aligned intermediate time, across
// all policies, both steppers, and the full buffer-architecture grid.
// Any fast-forward that skipped a step in which some worm could have
// moved would desynchronize the twins and fail the snapshot comparison.

import (
	"errors"
	"reflect"
	"testing"

	"wormhole/internal/message"
)

// injectAll feeds one fuzz workload into an incremental Sim up front,
// spreading releases by stretch to carve idle gaps for StepTo to jump.
func injectAll(t *testing.T, si *Sim, set *message.Set, releases []int, stretch int) {
	t.Helper()
	for i := 0; i < set.Len(); i++ {
		msg := set.Get(message.ID(i))
		if _, err := si.Inject(msg, releases[i]*stretch); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStepToMatchesStepLockstep(t *testing.T) {
	// Jump strides cycle through a mix of tiny and idle-gap-crossing
	// targets so both the real-step and clock-jump paths are exercised.
	strides := []int{1, 2, 7, 3, 1, 31, 5}
	for seed := uint64(1); seed <= 6; seed++ {
		for topo := uint8(0); topo < 3; topo++ {
			for _, arch := range []struct {
				depth  int
				shared bool
			}{{1, false}, {2, false}, {2, true}} {
				for _, pol := range []Policy{ArbByID, ArbAge, ArbRandom} {
					for _, naive := range []bool{false, true} {
						set, releases := fuzzWorkload(seed, topo, 14)
						cfg := Config{
							VirtualChannels: 1 + int(seed%2),
							LaneDepth:       arch.depth,
							SharedPool:      arch.shared,
							Arbitration:     pol,
							Seed:            seed,
							NaiveScan:       naive,
							MaxSteps:        1 << 14,
							CheckInvariants: true,
						}
						stepper, err := NewSim(set.G, cfg)
						if err != nil {
							t.Fatal(err)
						}
						jumper, err := NewSim(set.G, cfg)
						if err != nil {
							t.Fatal(err)
						}
						// Stretch 17 spreads the [0, 24) fuzz releases over
						// ~400 steps: long idle gaps on light prefixes.
						injectAll(t, stepper, set, releases, 17)
						injectAll(t, jumper, set, releases, 17)

						for i := 0; jumper.Active() > 0; i++ {
							target := jumper.Now() + strides[i%len(strides)]
							errJ := jumper.StepTo(target)
							var errS error
							for stepper.Now() < jumper.Now() {
								if errS = stepper.Step(); errS != nil {
									break
								}
							}
							if stepper.Now() != jumper.Now() {
								t.Fatalf("seed %d topo %d d=%d shared=%v %s naive=%v: clocks diverged: step %d vs jump %d",
									seed, topo, arch.depth, arch.shared, pol, naive, stepper.Now(), jumper.Now())
							}
							if (errJ == nil) != (errS == nil) || (errJ != nil && !errors.Is(errS, errJ)) {
								t.Fatalf("seed %d topo %d d=%d shared=%v %s naive=%v: error mismatch at %d: step %v vs jump %v",
									seed, topo, arch.depth, arch.shared, pol, naive, jumper.Now(), errS, errJ)
							}
							rs, rj := stepper.Result(), jumper.Result()
							if !reflect.DeepEqual(rs, rj) {
								t.Fatalf("seed %d topo %d d=%d shared=%v %s naive=%v: snapshots diverged at step %d\nstep: %+v\njump: %+v",
									seed, topo, arch.depth, arch.shared, pol, naive, jumper.Now(), rs, rj)
							}
							if errJ != nil {
								break
							}
						}
					}
				}
			}
		}
	}
}

// TestNextEventTimeContract pins the three regimes of NextEventTime on a
// hand-built scenario: work now, a pending release later, and nothing at
// all — plus the idle-jump arithmetic of StepTo against each.
func TestNextEventTimeContract(t *testing.T) {
	set, releases := fuzzWorkload(3, 0, 4)
	si, err := NewSim(set.G, Config{VirtualChannels: 2, MaxSteps: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if got := si.NextEventTime(); got != -1 {
		t.Fatalf("empty sim NextEventTime = %d, want -1", got)
	}
	// StepTo on an empty sim is a pure clock jump.
	if err := si.StepTo(100); err != nil || si.Now() != 100 {
		t.Fatalf("empty StepTo(100): err %v, now %d", err, si.Now())
	}
	msg := set.Get(0)
	if _, err := si.Inject(msg, 150); err != nil {
		t.Fatal(err)
	}
	if got := si.NextEventTime(); got != 150 {
		t.Fatalf("pending-only NextEventTime = %d, want 150", got)
	}
	// A jump short of the release stays idle; one past it does real work.
	if err := si.StepTo(140); err != nil || si.Now() != 140 {
		t.Fatalf("StepTo(140): err %v, now %d", err, si.Now())
	}
	if err := si.StepTo(151); err != nil || si.Now() != 151 {
		t.Fatalf("StepTo(151): err %v, now %d", err, si.Now())
	}
	if got := si.NextEventTime(); got != si.Now() {
		t.Fatalf("in-flight NextEventTime = %d, want %d", got, si.Now())
	}
	_ = releases
}

// TestStepToHorizon pins truncation parity: a StepTo past MaxSteps stops
// at the horizon with ErrHorizon and a Truncated result, exactly like a
// Step loop.
func TestStepToHorizon(t *testing.T) {
	set, _ := fuzzWorkload(5, 0, 3)
	build := func() *Sim {
		si, err := NewSim(set.G, Config{VirtualChannels: 1, MaxSteps: 64})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := si.Inject(set.Get(0), 200); err != nil { // beyond the horizon
			t.Fatal(err)
		}
		return si
	}
	jumper := build()
	errJ := jumper.StepTo(500)
	stepper := build()
	var errS error
	for errS == nil {
		errS = stepper.Step()
	}
	if !errors.Is(errJ, ErrHorizon) || !errors.Is(errS, ErrHorizon) {
		t.Fatalf("horizon errors: jump %v, step %v", errJ, errS)
	}
	if jumper.Now() != stepper.Now() || !jumper.Truncated() || !stepper.Truncated() {
		t.Fatalf("horizon state: jump now=%d trunc=%v, step now=%d trunc=%v",
			jumper.Now(), jumper.Truncated(), stepper.Now(), stepper.Truncated())
	}
	if !reflect.DeepEqual(jumper.Result(), stepper.Result()) {
		t.Fatal("truncated results differ between StepTo and Step loop")
	}
}
