package vcsim

import (
	"reflect"
	"testing"
	"testing/quick"

	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/telemetry"
	"wormhole/internal/topology"
)

// TestTelemetryDoesNotPerturbResults pins the flight-recorder contract:
// attaching Metrics and a Trace must leave the simulation schedule
// byte-identical. Randomized workloads across the architecture grid
// (rigid, deep static, shared pool) are run bare and instrumented, and
// the Results must be deeply equal.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		bf := topology.NewButterfly(8)
		set := message.NewSet(bf.G)
		var releases []int
		for i := 0; i < 2+r.Intn(24); i++ {
			src, dst := r.Intn(8), r.Intn(8)
			set.Add(bf.Input(src), bf.Output(dst), 1+r.Intn(6), bf.Route(src, dst))
			releases = append(releases, r.Intn(20))
		}
		for _, arch := range deepGrid {
			cfg := Config{
				VirtualChannels: 1 + r.Intn(3),
				LaneDepth:       arch.depth,
				SharedPool:      arch.shared,
				Arbitration:     Policy(r.Intn(3)),
				Seed:            seed,
				CheckInvariants: true,
			}
			bare := Run(set, releases, cfg)
			obs := cfg
			obs.Metrics = telemetry.NewMetrics()
			obs.Trace = telemetry.NewTrace(256)
			if !reflect.DeepEqual(bare, Run(set, releases, obs)) {
				t.Logf("d=%d shared=%v seed=%d: instrumented Result differs", arch.depth, arch.shared, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryCountersMatchResult cross-checks the counters against the
// ground truth the engine already reports: delivers, steps and stall
// totals in the snapshot must agree with the Result.
func TestTelemetryCountersMatchResult(t *testing.T) {
	bf := topology.NewButterfly(8)
	set := message.NewSet(bf.G)
	r := rng.New(7)
	for i := 0; i < 40; i++ {
		src, dst := r.Intn(8), r.Intn(8)
		set.Add(bf.Input(src), bf.Output(dst), 1+r.Intn(6), bf.Route(src, dst))
	}
	m := telemetry.NewMetrics()
	res := Run(set, nil, Config{VirtualChannels: 2, Metrics: m})
	if !res.AllDelivered() {
		t.Fatalf("workload did not drain: %+v", res)
	}
	s := m.Snapshot()
	if got := s.Counter("delivers"); got != int64(res.Delivered) {
		t.Errorf("delivers counter = %d, Result.Delivered = %d", got, res.Delivered)
	}
	if got := s.Counter("injects"); got != int64(set.Len()) {
		t.Errorf("injects counter = %d, want %d", got, set.Len())
	}
	if got := s.Counter("steps"); got != int64(res.Steps) {
		t.Errorf("steps counter = %d, Result.Steps = %d", got, res.Steps)
	}
	var perEdge int64
	for _, v := range s.EdgeStalls {
		perEdge += v
	}
	scalar := s.Counter("stall_lane_credit") + s.Counter("stall_shared_pool") +
		s.Counter("stall_bandwidth") + s.Counter("stall_head_of_line")
	if perEdge != scalar {
		t.Errorf("per-edge stall total %d != scalar stall total %d", perEdge, scalar)
	}
	if perEdge != int64(res.TotalStalls) {
		t.Errorf("stall total %d != Result.TotalStalls %d", perEdge, res.TotalStalls)
	}
}

// TestTelemetryStepZeroAllocSteadyState extends the steady-state
// allocation gates to instrumented runs: counters and a warm ring trace
// must keep the hot loop allocation-free on both engines.
func TestTelemetryStepZeroAllocSteadyState(t *testing.T) {
	for _, arch := range deepGrid {
		g := topology.NewLinearArray(7)
		route := message.ShortestPathRouter(g)
		sim, err := NewSim(g, Config{
			VirtualChannels: 2,
			LaneDepth:       arch.depth,
			SharedPool:      arch.shared,
			Arbitration:     ArbAge,
			MaxSteps:        1 << 30,
			Metrics:         telemetry.NewMetrics(),
			Trace:           telemetry.NewTrace(512),
		})
		if err != nil {
			t.Fatal(err)
		}
		msg := message.Message{Src: 0, Dst: graph.NodeID(6), Length: 5, Path: route(0, graph.NodeID(6))}
		for i := 0; i < 600; i++ {
			if _, err := sim.Inject(msg, 0); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 200; i++ {
			if err := sim.Step(); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(400, func() {
			if err := sim.Step(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("d=%d shared=%v: instrumented steady-state Step allocates %.2f times per step, want 0",
				arch.depth, arch.shared, allocs)
		}
	}
}

// TestTelemetryTraceCoversRun sanity-checks the event stream on a small
// drained run: every message contributes an inject and a deliver, and
// event times never decrease.
func TestTelemetryTraceCoversRun(t *testing.T) {
	bf := topology.NewButterfly(8)
	set := message.NewSet(bf.G)
	r := rng.New(3)
	for i := 0; i < 12; i++ {
		src, dst := r.Intn(8), r.Intn(8)
		set.Add(bf.Input(src), bf.Output(dst), 1+r.Intn(4), bf.Route(src, dst))
	}
	tr := telemetry.NewTrace(1 << 14)
	res := Run(set, nil, Config{VirtualChannels: 2, Trace: tr})
	if !res.AllDelivered() {
		t.Fatalf("workload did not drain: %+v", res)
	}
	injects, delivers, last := 0, 0, int32(0)
	for _, ev := range tr.Events() {
		if ev.Time < last {
			t.Fatalf("trace time went backwards: %+v after t=%d", ev, last)
		}
		last = ev.Time
		switch ev.Kind {
		case telemetry.EvInject:
			injects++
		case telemetry.EvDeliver:
			delivers++
		}
	}
	if injects != set.Len() || delivers != set.Len() {
		t.Errorf("trace saw %d injects / %d delivers, want %d of each", injects, delivers, set.Len())
	}
	if tr.Dropped() != 0 {
		t.Errorf("ring dropped %d events despite generous capacity", tr.Dropped())
	}
}
