// Package vcsim is a cycle-accurate simulator of the paper's wormhole
// router model (Section 1.1):
//
//   - every physical channel (directed edge) multiplexes B virtual
//     channels, realized as a B-slot flit buffer at the head of the edge,
//     at most one flit per message per buffer;
//   - in one flit step, one flit can cross each of the B virtual channels
//     of an edge (so up to B flits per edge per step, at most one per
//     message);
//   - a header flit cannot cross an edge whose head buffer has no free
//     slot; a blocked worm stalls rigidly (no flit of it moves);
//   - injection and delivery buffers are external and unbounded, and a
//     flit reaching its destination node leaves the network immediately.
//
// Two model variants from the paper are supported: drop-on-delay (the
// Section 3.1 algorithm discards any worm that is ever delayed) and the
// restricted-bandwidth model of the Section 1.4 remarks (B buffer slots
// per edge but only one flit may cross each physical edge per step).
//
// The simulator is synchronous and two-phase: slot releases performed
// during a step become visible to other messages only at the next step,
// matching a conservative hardware pipeline. Under this discipline a color
// class with multiplex size ≤ B released in isolation provably never
// blocks, which is the property the Theorem 2.1.6 schedules rely on.
package vcsim

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"wormhole/internal/fault"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/telemetry"
)

// Policy selects how contending headers are ordered within a flit step.
type Policy int8

const (
	// ArbByID processes messages in message-ID order (a deterministic
	// stand-in for FIFO hardware arbitration).
	ArbByID Policy = iota
	// ArbRandom shuffles contenders uniformly each step.
	ArbRandom
	// ArbAge gives priority to messages with earlier release times
	// (ties broken by ID).
	ArbAge
)

func (p Policy) String() string {
	switch p {
	case ArbByID:
		return "by-id"
	case ArbRandom:
		return "random"
	case ArbAge:
		return "age"
	}
	return fmt.Sprintf("policy(%d)", int8(p))
}

// Config parameterizes a simulation run.
type Config struct {
	// VirtualChannels is B ≥ 1: buffer lanes per edge and, unless
	// RestrictedBandwidth is set, also the per-edge flit bandwidth.
	VirtualChannels int
	// LaneDepth is d ≥ 1, the flit capacity of each virtual-channel lane
	// (0 means 1). The paper's model is d = 1 — one flit of buffering per
	// lane — and runs on the original rigid-worm engine, byte for byte.
	// Deeper lanes (or SharedPool) switch to the flit-level deep engine in
	// deep.go, under which a blocked worm compresses into its lane storage
	// instead of stalling rigidly.
	LaneDepth int
	// SharedPool pools the edge's B·d flit credits across its B lanes:
	// credits are allocated dynamically, so one hot lane can absorb the
	// whole pool, while the lane count (distinct worms buffered per edge)
	// stays capped at B. False keeps each lane a private d-flit FIFO.
	SharedPool bool
	// RestrictedBandwidth enables the Section 1.4 remark model: B buffer
	// lanes but at most one flit crosses each physical edge per step.
	RestrictedBandwidth bool
	// DropOnDelay discards a worm the first time it fails to advance
	// (used by the Section 3.1 butterfly algorithm).
	DropOnDelay bool
	// Arbitration orders contending messages. Default ArbByID.
	Arbitration Policy
	// Seed feeds the ArbRandom shuffle; ignored otherwise.
	Seed uint64
	// MaxSteps bounds the run; 0 derives a safe bound from the workload.
	// Exceeding the bound marks the result as truncated. The engine keeps
	// per-message event times in 32-bit counters, so the horizon is capped
	// at MaxHorizon.
	MaxSteps int
	// CheckInvariants makes every step assert buffer-capacity and
	// worm-contiguity invariants (for tests; costs time).
	CheckInvariants bool
	// NaiveScan disables the blocked-worm wakeup machinery and restores
	// the original stepper, which re-attempts every active worm every
	// step. Results are byte-identical either way — the wakeup engine is
	// pinned to this one by differential tests — so the naive scan
	// survives purely as the slow, obviously correct oracle.
	NaiveScan bool
	// ParkStreak is the wakeup engine's park hysteresis: a slot-blocked
	// worm parks on a wait queue only after this many consecutive failed
	// steps, so brief blocked episodes never pay the park/wake machinery.
	// 0 means the default of 8. The value is pure mechanism — results are
	// byte-identical for every setting (pinned by regression tests).
	ParkStreak int
	// Observer, when non-nil, receives per-event callbacks (advances,
	// drops, deliveries). Event times match the MessageStats convention:
	// an event processed in the step from t to t+1 reports time t+1.
	Observer Observer
	// OnComplete, when non-nil, fires exactly once per message when it
	// finishes — delivered or dropped — with its final MessageStats. Open-
	// loop drivers use it to stream latencies without retaining per-message
	// state; it must not call back into the simulator.
	OnComplete func(message.ID, MessageStats)
	// Metrics, when non-nil, receives flight-recorder counters from the hot
	// path: stall-cause attribution, park/wake totals, per-edge
	// occupancy/stall accumulators, fast-forward histogram. Every site is
	// nil-check gated, so a nil Metrics costs one predictable branch and the
	// simulation schedule is byte-identical either way. A Metrics must not
	// be shared by concurrently running simulators.
	Metrics *telemetry.Metrics
	// Trace, when non-nil, receives the structured event stream — a strict
	// superset of the Observer callbacks (inject/park/wake/credit events
	// have no Observer equivalent). Same nil-gating and identity guarantees
	// as Metrics.
	Trace *telemetry.Trace
	// Shards ≥ 2 steps the simulation on that many goroutines, each
	// owning a contiguous band of edge IDs (topological slabs: butterfly
	// stages, mesh tiles); ≤ 256. Results are byte-identical to the
	// sequential stepper for every value — sharding is pure mechanism,
	// pinned by differential, lockstep, and fuzz suites (see shard.go
	// for the contest-edge argument). Steps outside the provable regime
	// (deep lanes, restricted bandwidth, ArbRandom, mixed edge roles,
	// trace/observer sinks, or too few active worms to pay the fan-out)
	// transparently run sequentially. Worker goroutines start lazily on
	// the first sharded step; Sim.Close releases them (a finalizer
	// covers abandoned Sims). 0 and 1 mean sequential.
	Shards int
	// Faults attaches a deterministic fault schedule (see internal/fault):
	// scripted kill/revive events against lanes and whole edges, applied at
	// exact flit steps. Nil keeps the fault-free hot path bit for bit. A
	// fault plane forces the sequential stepper (ShardFallbackReason
	// reports it); results remain byte-identical across shard counts and
	// across snapshot/restore cuts, including cuts inside an outage.
	Faults fault.Schedule
	// Retry is the source-side re-injection policy for fault-blocked
	// messages: a worm whose header is still at its source router (nothing
	// injected yet) and whose next edge is dead aborts the attempt and
	// re-enters the pending queue after a capped exponential backoff in
	// simulated time. The zero value disables retries — such worms park on
	// the fault wait queue like any other blocked worm.
	Retry RetryPolicy
}

// RetryPolicy caps and paces source-side re-injection of fault-blocked
// messages (see Config.Retry).
type RetryPolicy struct {
	// MaxAttempts is the number of re-injections allowed per message
	// before it is abandoned with StatusAborted. 0 disables retries.
	MaxAttempts int
	// Backoff is the base delay in flit steps before the first
	// re-injection; each subsequent retry doubles it. 0 means 16.
	Backoff int
	// BackoffCap bounds the doubled delay. 0 means 1024.
	BackoffCap int
}

// MaxHorizon is the largest supported MaxSteps / release time: event
// times are held in 32-bit counters throughout the hot-path storage, so
// a run can execute at most ~2·10⁹ flit steps. (A run actually reaching
// the cap would take days of wall clock; the bound exists so overflow is
// an up-front error instead of silent corruption.)
const MaxHorizon = math.MaxInt32 - 1

// Observer receives simulation events; the trace package uses it to
// reconstruct space-time diagrams. Implementations must not call back
// into the simulator.
type Observer interface {
	// OnAdvance fires when a worm moves; frontier is the number of edges
	// its header has crossed after the move.
	OnAdvance(time int, msg message.ID, frontier int)
	// OnDrop fires when drop-on-delay discards a worm.
	OnDrop(time int, msg message.ID)
	// OnDeliver fires when a worm's last flit reaches its destination.
	OnDeliver(time int, msg message.ID)
}

// Status describes a message's final (or current) state.
type Status int8

const (
	// StatusWaiting means the release time has not been reached.
	StatusWaiting Status = iota
	// StatusActive means the worm is injected or trying to inject.
	StatusActive
	// StatusDelivered means all L flits reached the destination.
	StatusDelivered
	// StatusDropped means drop-on-delay discarded the worm.
	StatusDropped
	// StatusAborted means the fault-retry policy gave up on the message:
	// its source-side re-injections all found the first dead edge still
	// dead and MaxAttempts ran out.
	StatusAborted
)

func (s Status) String() string {
	switch s {
	case StatusWaiting:
		return "waiting"
	case StatusActive:
		return "active"
	case StatusDelivered:
		return "delivered"
	case StatusDropped:
		return "dropped"
	case StatusAborted:
		return "aborted"
	}
	return fmt.Sprintf("status(%d)", int8(s))
}

// MessageStats records the fate of one message.
type MessageStats struct {
	Status      Status
	Release     int // configured (or last retried) release time
	InjectTime  int // flit step at which the header first crossed an edge; -1 if never
	DeliverTime int // flit step at which the last flit arrived; -1 if not delivered
	DropTime    int // flit step of the drop or fault abort; -1 otherwise
	Stalls      int // steps spent eligible but unable to advance
	Retries     int // fault-policy re-injections performed
}

// Latency returns delivery time minus release, or -1 if undelivered.
func (m MessageStats) Latency() int {
	if m.Status != StatusDelivered {
		return -1
	}
	return m.DeliverTime - m.Release
}

// Result summarizes a run.
type Result struct {
	Steps     int // flit step at which the last event occurred
	Delivered int // messages fully delivered
	Dropped   int // messages discarded by drop-on-delay
	// Aborted counts messages abandoned by the fault-retry policy after
	// exhausting their re-injection attempts against a dead edge.
	Aborted    int
	Deadlocked bool // true if a blocked configuration could never advance
	// FaultDeadlocked distinguishes deadlocks declared while fault-killed
	// resources were still dead: the freeze is (at least partly) an
	// artifact of the outage, not of the schedule's channel dependencies.
	FaultDeadlocked bool
	Truncated       bool // true if MaxSteps was exceeded
	TotalStalls     int
	FlitHops        int64 // total flit-edge crossings (work performed)
	MaxOccupied     int   // max buffer slots observed in use on any edge
	PerMessage      []MessageStats
	BlockedIDs      []message.ID // messages blocked at deadlock detection
}

// AllDelivered reports whether every message was delivered.
func (r *Result) AllDelivered() bool {
	return r.Delivered == len(r.PerMessage)
}

// MaxLatency returns the largest per-message latency among delivered
// messages (0 when none were delivered).
func (r *Result) MaxLatency() int {
	max := 0
	for i := range r.PerMessage {
		if l := r.PerMessage[i].Latency(); l > max {
			max = l
		}
	}
	return max
}

// DeliveredIDs returns the IDs of delivered messages in ID order.
func (r *Result) DeliveredIDs() []message.ID {
	var out []message.ID
	for i := range r.PerMessage {
		if r.PerMessage[i].Status == StatusDelivered {
			out = append(out, message.ID(i))
		}
	}
	return out
}

// DroppedIDs returns the IDs of dropped messages in ID order.
func (r *Result) DroppedIDs() []message.ID {
	var out []message.ID
	for i := range r.PerMessage {
		if r.PerMessage[i].Status == StatusDropped {
			out = append(out, message.ID(i))
		}
	}
	return out
}

// worm is the per-message simulation state, held in chunked arena storage
// (see wormChunk) and kept deliberately small: the steppers touch one worm
// per advance attempt, so the struct's cache footprint is a first-order
// term in ns/step. All time-valued fields are 32-bit (see MaxHorizon).
//
// Because rigid worms cannot stretch, the entire flit configuration is
// captured by a single counter: frontier = the number of edges the header
// has crossed. Flit j has crossed clamp(frontier−j, 0, D) edges; an
// in-network flit that has crossed c ≥ 1 edges occupies the buffer at the
// head of path[c−1], and a flit with c = D has been removed into the
// delivery buffer. The deep engine (deep.go) tracks per-flit progress in
// prog instead; its fHead/lastInj cursors live here too, inline, so a deep
// advance attempt touches one struct instead of three arrays.
type worm struct {
	path []int32 // edge IDs, arena-backed
	// prog is the deep engine's per-flit progress (nil on the rigid path):
	// prog[j] = edges flit j has crossed, non-increasing in j.
	prog []int32
	// key is the arbitration-order key: id for ArbByID, release<<32 | id
	// for ArbAge. Sorts, merges, and wait-queue heaps compare keys instead
	// of chasing (release, id) field pairs through cold worm structs.
	key      uint64
	id       int32
	d, l     int32 // path length, message length
	frontier int32
	release  int32

	// Compact per-message stats, assembled into MessageStats on demand
	// (Result snapshots, OnComplete).
	injectTime  int32 // -1 if never injected
	deliverTime int32 // -1 if not delivered
	dropTime    int32 // -1 if not dropped
	stalls      int32
	status      Status

	// Wakeup-engine state (idle under Config.NaiveScan). A worm whose
	// header finds its next edge's buffer full is parked on that edge's
	// wait queue and skipped until a slot event there — the only event
	// that can change the verdict — wakes it in applyStepEnd. parkedAt
	// is the step of the failed attempt (-1 when not parked); stall
	// credit for the parked span is stamped lazily on wake, deadlock, or
	// result snapshot.
	parkedAt int32
	waitEdge int32
	// streak counts consecutive failed steps since the last advance or
	// wake; parking waits out a short probation (parkStreak) so brief
	// blocked episodes never pay the park/wake machinery.
	streak int32
	// woken marks a worm between a wake and its next advance, so telemetry
	// can classify a re-park without progress as a spurious wake. Pure
	// observation — never consulted by the engine itself.
	woken bool

	// Deep-engine cursors: fHead is the first undelivered flit, lastInj
	// the last injected one (−1 before the header enters the network).
	fHead   int32
	lastInj int32
	// stretched marks a deep worm whose in-flight flits sit at strictly
	// consecutive progress values — the rigid-equivalent configuration, in
	// which an unobstructed step advances every flit via shift-through.
	// The deep engine takes a one-pass fast path while it holds (see
	// tryAdvanceStretched) and re-derives it after any compressing step.
	stretched bool
	// blockedOn caches a deep worm's fully-blocked verdict (the park
	// target, kind bit included; -1 when clear). A fully blocked worm's
	// verdict is stable until the blocking credit frees — the park
	// invariant — so probation re-attempts re-fail on a two-load check
	// instead of rescanning every flit (see tryAdvanceDeep).
	blockedOn int32
	// retries counts fault-policy re-injections performed (see
	// Config.Retry); it only moves for worms whose first edge died while
	// their header was still at the source.
	retries int32
}

// messageStats assembles the public MessageStats view of a worm.
//
//wormvet:hotpath
func (w *worm) messageStats() MessageStats {
	return MessageStats{
		Status:      w.status,
		Release:     int(w.release),
		InjectTime:  int(w.injectTime),
		DeliverTime: int(w.deliverTime),
		DropTime:    int(w.dropTime),
		Stalls:      int(w.stalls),
		Retries:     int(w.retries),
	}
}

// complete reports whether all flits have been delivered.
//
//wormvet:hotpath
func (w *worm) complete() bool { return w.frontier >= w.d+w.l-1 }

// span returns the closed interval [lo, hi] of path indices whose buffers
// this worm currently occupies; ok is false when the worm occupies nothing.
// Buffers exist only for non-final edges (a flit crossing the last edge is
// removed immediately), hence the d−2 cap.
//
//wormvet:hotpath
func (w *worm) span() (lo, hi int32, ok bool) {
	hi = w.frontier - 1
	if hi > w.d-2 {
		hi = w.d - 2
	}
	lo = w.frontier - w.l
	if lo < 0 {
		lo = 0
	}
	return lo, hi, lo <= hi
}

// crossed returns the closed interval [lo, hi] of path indices whose edges
// carry one flit of this worm if it advances this step.
//
//wormvet:hotpath
func (w *worm) crossed() (lo, hi int32) {
	hi = w.frontier
	if hi > w.d-1 {
		hi = w.d - 1
	}
	lo = w.frontier - w.l + 1
	if lo < 0 {
		lo = 0
	}
	return lo, hi
}

// --- arena storage -----------------------------------------------------------

// wormShift sizes worm chunks: 4096 worms ≈ 0.5 MB per chunk. Chunked
// storage keeps worm addresses stable and append cost O(1): a long
// open-loop run injects hundreds of thousands of messages, and growing a
// flat []worm re-copies the whole population every ~25% growth — the
// single largest allocation cost of the pre-arena engine.
const (
	wormShift = 12
	wormMask  = 1<<wormShift - 1
)

type wormChunk [1 << wormShift]worm

// worm returns the worm with the given dense id/index.
//
//wormvet:hotpath
func (si *Sim) worm(idx int) *worm {
	return &si.wormChunks[idx>>wormShift][idx&wormMask]
}

// addWorm appends a zeroed worm slot and returns it with its id. Ids are
// bounded by MaxHorizon so they always fit the 32-bit halves of packed
// keys and the worm.id field; hitting the bound means ~2³¹ injected
// messages, far past any memory budget, so it panics rather than errors.
func (si *Sim) addWorm() (*worm, int) {
	id := si.numWorms
	if id >= MaxHorizon {
		panic(fmt.Sprintf("vcsim: worm count %d reached MaxHorizon", id))
	}
	if ci := id >> wormShift; ci == len(si.wormChunks) {
		si.wormChunks = append(si.wormChunks, new(wormChunk))
	}
	si.numWorms++
	return &si.wormChunks[id>>wormShift][id&wormMask], id
}

// arenaChunk sizes i32Arena chunks (64 Ki int32 = 256 KB).
const arenaChunk = 1 << 16

// i32Arena is a bump allocator for the int32 buffers worms carry (paths
// and deep-mode flit progress). Allocations never span chunks, so a
// returned slice is contiguous; reset rewinds the cursor and reuses every
// chunk, which is what makes a Reset-reused Sim allocation-free.
type i32Arena struct {
	chunks [][]int32
	cur    int // chunk being filled
	off    int // fill offset within it
}

// alloc returns an n-element slice (cap == n) of arena memory. Contents
// are unspecified — callers overwrite every element or zero it themselves.
func (a *i32Arena) alloc(n int) []int32 {
	if n == 0 {
		return nil
	}
	for {
		if a.cur < len(a.chunks) {
			c := a.chunks[a.cur]
			if a.off+n <= len(c) {
				s := c[a.off : a.off+n : a.off+n]
				a.off += n
				return s
			}
			a.cur++
			a.off = 0
			continue
		}
		size := arenaChunk
		if n > size {
			size = n
		}
		a.chunks = append(a.chunks, make([]int32, size))
	}
}

// reset rewinds the arena; previously allocated slices become reusable
// storage and must no longer be referenced.
func (a *i32Arena) reset() { a.cur, a.off = 0, 0 }

// Run simulates the message set under the given per-message release times
// (release[i] is the earliest flit step at which message i may start; nil
// means all release at 0) and returns the result. It is a thin batch
// wrapper over the incremental Sim engine: all messages are loaded up
// front and the simulation is drained to completion.
func Run(s *message.Set, release []int, cfg Config) Result {
	sim := newBatchSim(s, release, cfg)
	sim.Drain()
	res := sim.Result()
	sim.Close()
	return res
}

// RunChecked is Run with the workload validation surfaced as a typed
// error — ErrBadConfig, ErrBadMessage, or ErrOverHorizon, the same
// family Inject and NewSim return — instead of a panic. Services
// running tenant-submitted workloads use it to report a client error
// rather than crash the job.
func RunChecked(s *message.Set, release []int, cfg Config) (Result, error) {
	if err := validateBatch(s, release, cfg); err != nil {
		return Result{}, err
	}
	return Run(s, release, cfg), nil
}

// Sim is the incremental simulation engine: a resumable simulator state
// that messages can be injected into while time advances. The lifecycle
// is
//
//	sim, err := NewSim(g, cfg)        // cfg.MaxSteps must be explicit
//	id, err := sim.Inject(msg, t)     // any time, for any release ≥ Now()
//	err = sim.Step()                  // advance exactly one flit step
//	err = sim.StepTo(t)               // advance to t, skipping idle spans
//	sim.Drain()                       // run until empty/deadlock/horizon
//	res := sim.Result()               // snapshot, callable at any point
//	sim.Reset()                       // back to empty, retaining storage
//
// Step advances one flit step even when no message is eligible (idle
// steps model real time in open-loop workloads); StepTo and Drain instead
// fast-forward across idle gaps (see NextEventTime), which is what the
// batch Run wrapper and the open-loop traffic driver use. Completion of
// individual messages is observable through Config.OnComplete. A Sim must
// not be shared across goroutines.
type Sim struct {
	cfg    Config
	b      int
	cap    int   // per-edge flit crossings per step
	bI32   int32 // int32 mirrors of b/cap for the hot loops
	capI32 int32
	// Buffer architecture (see deep.go): lane depth d, the shared-pool
	// flag, and their derived switches. deepMode selects the flit-level
	// engine; the d = 1 static configuration keeps the rigid engine and
	// its exact pre-existing behavior.
	depth    int32
	shared   bool
	deepMode bool
	poolCap  int32 // B·d flit credits per edge (deep mode)

	// Worm storage: chunked arena (stable addresses, O(1) growth) plus a
	// shared int32 arena backing path and flit-progress buffers. worms
	// are indexed by dense message ID; numWorms is the count.
	wormChunks []*wormChunk
	numWorms   int
	arena      i32Arena

	// pending holds release keys (release<<32 | id, a policy-independent
	// encoding whose uint64 order IS (release, id) order) for worms whose
	// release time has not arrived; worms move to active as their release
	// times pass, so steps never scan unreleased worms (schedules can
	// spread releases over a long horizon). pendHead is the consume
	// cursor: admissions advance it instead of re-slicing, and the insert
	// path compacts the live window back to the front when the backing
	// array fills — a front-resliced slice would otherwise crawl through
	// its array and reallocate ~once per wrap for the whole life of an
	// open-loop run.
	pending  []uint64
	pendHead int
	// active holds the policy keys (worm.key — the worm index rides in
	// the low 32 bits) of released, incomplete, unparked worms. The
	// wakeup engine keeps it directly in policy order (ID for ArbByID,
	// (release, id) for ArbAge, admission order — with parked worms left
	// in place — for ArbRandom), so ordering operations — merges, heap
	// sifts, deadlock sorts — compare dense integers and never chase worm
	// structs. The naive scan keeps it in admission order, i.e.
	// (release, id).
	active []uint64
	// byID is the naive scan's active list in plain ID order,
	// materialized lazily the first time a staggered admission appends a
	// lower ID behind a higher one. While nil, active itself is
	// ID-ordered and ArbByID uses it directly; once materialized it is
	// maintained incrementally (binary insert on admit, filter on reap)
	// so steps never re-sort. The wakeup engine never needs it.
	byID []uint64
	now  int

	// Per-edge credit state, updated in place. laneFree[e] is the number
	// of lane grants still available on e this step: B minus persistent
	// occupancy minus this step's uncommitted grants — the quantity every
	// capacity check actually wants, maintained as one counter instead of
	// slotsUsed+grants pairs. Releases stay deferred (two-phase model):
	// relLane[e] accumulates this step's lane releases and folds into
	// laneFree at step end. In deep mode laneFree counts lanes (distinct
	// worms buffered) and flitFree/relFlit do the same for the B·d flit
	// credits.
	laneFree []int32
	relLane  []int32
	flitFree []int32 // deep mode only
	relFlit  []int32 // deep mode only
	// crossings is the per-edge bandwidth meter, epoch-stamped so it
	// never needs clearing: the upper 32 bits hold step+1, the lower the
	// crossing count within that step. A stale stamp reads as zero, so
	// body-flit crossings touch no end-of-step state at all — the dirty
	// list below carries only credit events, the ones wakeups care about.
	crossings []uint64
	// dirty lists the edges with credit releases this step — the only
	// edges whose counters need folding and whose wait queues can need a
	// wake (free credit rises exclusively through releases; an edge that
	// saw only grants this step is at or below the level every parked
	// worm already failed against). dirtyMax lists grant-only edges,
	// which owe nothing at step end but a MaxOccupied probe. dirtyFlag
	// holds both membership bits.
	dirty     []int32
	dirtyMax  []int32
	dirtyFlag []uint8 // bit 1: on dirty; bit 2: on dirtyMax

	// Wakeup-engine state (nil/zero under Config.NaiveScan). waitQ[e]
	// holds the worms parked on edge e as a min-heap in key order, so
	// a slot event wakes only the waiters that could actually win the
	// freed slots. Under the deterministic policies parked worms leave
	// the active list entirely, so a step costs O(worms that can
	// plausibly move); under ArbRandom they stay in it — the shuffle must
	// cover every active worm to keep the RNG stream identical to the
	// naive scan — and are skipped without an advance attempt.
	naive bool
	waitQ [][]uint64
	// waitQFlit is the deep shared-pool engine's second per-edge queue:
	// worms whose blocked flit needs only a pool credit (resume condition
	// flitFree > 0), kept apart from lane-acquisition waiters (laneFree,
	// and under a shared pool flitFree, > 0) so wakeEdge can test each
	// queue's exact resume condition. Nil outside shared deep mode.
	waitQFlit  [][]uint64
	parked     int   // worms currently parked
	parkStreak int32 // park hysteresis (Config.ParkStreak; default 8)

	// Edge-role classification behind the free-slot-count wake rule (see
	// wakeEdge). A final-edge crossing consumes bandwidth without holding
	// a buffer slot, so on workloads where some edge is one message's
	// final edge and another's body edge, a woken worm can decline its
	// freed slot by failing bandwidth on a body edge even when cap == B.
	// finalSeen/bodySeen record the roles each edge has appeared in;
	// mixedFinal flips — permanently — the first time an edge is seen in
	// both, downgrading slot events to whole-queue wakes. Butterfly
	// workloads (every edge into an output is final for all paths through
	// it) never flip and keep the optimized wake. Rigid wakeup mode only.
	finalSeen  []bool
	bodySeen   []bool
	mixedFinal bool

	// Reused per-step scratch so the hot loop is allocation-free at
	// steady state: the ArbRandom shuffle copy, the naive scan's blocked
	// list, and the wakeup engine's woken-worm batch and merge buffer
	// (woken worms re-enter the active list through one sorted merge per
	// step — per-worm sorted inserts would make waking a long queue
	// quadratic in its length).
	orderScratch   []uint64
	blockedScratch []message.ID
	wokenScratch   []uint64
	mergeScratch   []uint64

	// pathFree recycles completed worms' path buffers into later Injects
	// (incremental mode only — batch runs load everything up front, so
	// recycling would just pin the whole workload's paths in memory).
	// At steady state this makes injection allocation-free for the
	// near-uniform path lengths open-loop workloads produce. progFree
	// does the same for deep-mode flit-progress buffers.
	recycle  bool
	pathFree [][]int32
	progFree [][]int32

	shuffler *rng.Source

	// Flight-recorder sinks (Config.Metrics / Config.Trace). Both nil in
	// measured configurations; every hot-path use is nil-gated.
	met *telemetry.Metrics
	trc *telemetry.Trace

	// Sharded-stepper state (Config.Shards ≥ 2; see shard.go). The
	// phase funcs are bound once so the per-step pool dispatch does not
	// allocate; shardMin is the per-shard activity cutoff
	// (shardMinActive, overridable by tests to force tiny workloads
	// onto the parallel path).
	shards       int
	shardMin     int
	edgeShard    []uint8 // owning shard per edge: contiguous ID bands
	shardStates  []*shardState
	shardOwner   []uint8 // per-active-worm owner, rebuilt each sharded step
	shardVerdict []uint8 // per-active-worm verdict (see shardKeep etc.)
	// pool is guarded by poolMu: Close may race a concurrent Reset (or a
	// second Close, or the finalizer) in long-lived drivers that retire
	// Sims from a different goroutine than the one stepping them.
	poolMu       sync.Mutex
	finalizerSet bool // the Close finalizer is set at most once per Sim
	pool         *shardPool
	classifyFn   func(int)
	processFn    func(int)
	shardSteps   int64

	// Fault plane (Config.Faults; everything below is nil/zero — and the
	// per-step cost one predictable branch — when no schedule is
	// attached). Events are consumed in schedule order through faultIdx:
	// normally at the top of applyStepEnd (events with Step ≤ now+1, so a
	// revive folds exactly like a credit release and wakes waiters), and
	// directly at the top of step() to catch up after a StepTo/Drain jump
	// (safe: jumps only happen with nothing in flight). deadEdge marks
	// dead edges; killedLanes counts kill debt per edge (laneFree may go
	// negative while occupants drain); faultQ parks worms blocked on a
	// dead edge (revival wakes the whole queue); faultSince tracks each
	// edge's open outage start for the telemetry fault-time heatmap.
	faults      fault.Schedule
	faultIdx    int
	lastRevive  int // largest revive step in the schedule; -1 when none
	deadEdge    []bool
	killedLanes []int32
	faultSince  []int32
	faultQ      [][]uint64
	deadEdges   int // count of currently dead edges
	killedTotal int // count of currently killed lanes, all edges
	retryMax    int // normalized Config.Retry
	retryBase   int32
	retryCap    int32
	aborted     int
	faultDead   bool // deadlock declared with dead resources present

	totalStalls int
	flitHops    int64
	maxOccupied int
	delivered   int
	dropped     int
	deadlocked  bool
	truncated   bool
	blockedIDs  []message.ID
	maxSteps    int
}

// emptySim builds a Sim with no messages over a network of numEdges
// physical channels. Both constructors (batch and incremental) share it.
func emptySim(numEdges int, cfg Config) *Sim {
	depth := cfg.LaneDepth
	if depth == 0 {
		depth = 1
	}
	parkStreak := cfg.ParkStreak
	if parkStreak == 0 {
		parkStreak = defaultParkStreak
	}
	if cfg.VirtualChannels*depth > MaxHorizon {
		panic(fmt.Sprintf("vcsim: VirtualChannels %d × LaneDepth %d overflows the 32-bit pool layout", cfg.VirtualChannels, depth))
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	si := &Sim{
		cfg:        cfg,
		b:          cfg.VirtualChannels,
		cap:        cfg.VirtualChannels,
		depth:      int32(depth),
		shared:     cfg.SharedPool,
		deepMode:   depth > 1 || cfg.SharedPool,
		poolCap:    int32(cfg.VirtualChannels * depth),
		naive:      cfg.NaiveScan,
		parkStreak: int32(parkStreak),
		shards:     shards,
		shardMin:   shardMinActive,
		laneFree:   make([]int32, numEdges),
		relLane:    make([]int32, numEdges),
		crossings:  make([]uint64, numEdges),
		dirtyFlag:  make([]uint8, numEdges),
		maxSteps:   cfg.MaxSteps,
	}
	if shards > 1 && numEdges > 0 {
		// Contiguous, balanced edge-ID bands: edge IDs are laid out
		// stage-major on the butterfly and tile-major on meshes, so a
		// band is a topological slab and same-edge contention stays
		// shard-local.
		si.edgeShard = make([]uint8, numEdges)
		for e := range si.edgeShard {
			si.edgeShard[e] = uint8(e * shards / numEdges)
		}
	}
	if cfg.RestrictedBandwidth {
		si.cap = 1
	}
	si.bI32 = int32(si.b)     //wormvet:allow horizon -- b = VirtualChannels ≤ VirtualChannels·depth, bounded above
	si.capI32 = int32(si.cap) //wormvet:allow horizon -- cap ∈ {1, b}
	for e := range si.laneFree {
		si.laneFree[e] = si.bI32
	}
	if si.deepMode {
		si.flitFree = make([]int32, numEdges)
		si.relFlit = make([]int32, numEdges)
		for e := range si.flitFree {
			si.flitFree[e] = si.poolCap
		}
	}
	if cfg.Arbitration == ArbRandom {
		si.shuffler = rng.New(cfg.Seed)
	}
	si.met = cfg.Metrics
	si.trc = cfg.Trace
	if si.met != nil {
		si.met.EnsureEdges(numEdges)
	}
	if !si.naive {
		si.waitQ = make([][]uint64, numEdges)
		if si.deepMode && si.shared {
			si.waitQFlit = make([][]uint64, numEdges)
		}
		if !si.deepMode {
			si.finalSeen = make([]bool, numEdges)
			si.bodySeen = make([]bool, numEdges)
		}
	}
	si.lastRevive = -1
	if len(cfg.Faults) > 0 {
		si.faults = cfg.Faults
		si.lastRevive = cfg.Faults.LastRevive()
		si.deadEdge = make([]bool, numEdges)
		si.killedLanes = make([]int32, numEdges)
		si.faultSince = make([]int32, numEdges)
		for e := range si.faultSince {
			si.faultSince[e] = -1
		}
		if !si.naive {
			si.faultQ = make([][]uint64, numEdges)
		}
		si.retryMax = cfg.Retry.MaxAttempts
		base, bcap := cfg.Retry.Backoff, cfg.Retry.BackoffCap
		if base <= 0 {
			base = 16
		}
		if bcap <= 0 {
			bcap = 1024
		}
		si.retryBase = int32(base) //wormvet:allow horizon -- validateArch bounds Backoff ≤ MaxHorizon
		si.retryCap = int32(bcap)  //wormvet:allow horizon -- validateArch bounds BackoffCap ≤ MaxHorizon
	}
	return si
}

// Reset returns the simulator to its just-constructed state over the same
// network and Config, retaining every allocation: worm chunks, the
// path/progress arena, wait queues, and all per-step scratch. A driver
// that replays runs of similar shape through one Sim therefore performs
// no steady-state allocation at all (the open-loop traffic Runner and the
// benchmark suite rely on this). Results are byte-identical to a fresh
// NewSim with the same Config — the shuffler is reseeded from Config.Seed.
func (si *Sim) Reset() {
	for e := range si.laneFree {
		si.laneFree[e] = si.bI32
		si.relLane[e] = 0
		si.crossings[e] = 0
		si.dirtyFlag[e] = 0
	}
	if si.deepMode {
		for e := range si.flitFree {
			si.flitFree[e] = si.poolCap
			si.relFlit[e] = 0
		}
	}
	if si.waitQ != nil {
		for e := range si.waitQ {
			si.waitQ[e] = si.waitQ[e][:0]
		}
	}
	if si.waitQFlit != nil {
		for e := range si.waitQFlit {
			si.waitQFlit[e] = si.waitQFlit[e][:0]
		}
	}
	if si.finalSeen != nil {
		for e := range si.finalSeen {
			si.finalSeen[e] = false
			si.bodySeen[e] = false
		}
	}
	si.mixedFinal = false
	if si.faults != nil {
		si.faultIdx = 0
		for e := range si.deadEdge {
			si.deadEdge[e] = false
			si.killedLanes[e] = 0
			si.faultSince[e] = -1
		}
		if si.faultQ != nil {
			for e := range si.faultQ {
				si.faultQ[e] = si.faultQ[e][:0]
			}
		}
		si.deadEdges = 0
		si.killedTotal = 0
		si.aborted = 0
		si.faultDead = false
	}
	si.numWorms = 0
	si.arena.reset()
	si.pending = si.pending[:0]
	si.pendHead = 0
	si.active = si.active[:0]
	si.byID = nil
	si.dirty = si.dirty[:0]
	si.dirtyMax = si.dirtyMax[:0]
	si.orderScratch = si.orderScratch[:0]
	si.blockedScratch = si.blockedScratch[:0]
	si.wokenScratch = si.wokenScratch[:0]
	si.mergeScratch = si.mergeScratch[:0]
	si.pathFree = si.pathFree[:0]
	si.progFree = si.progFree[:0]
	si.parked = 0
	si.now = 0
	si.shardSteps = 0
	// Shard accumulators are empty between steps; only their telemetry
	// children carry state, which must survive into the parent so a
	// Reset-reused Sim loses no counts.
	si.drainShardMetrics()
	si.totalStalls = 0
	si.flitHops = 0
	si.maxOccupied = 0
	si.delivered = 0
	si.dropped = 0
	si.deadlocked = false
	si.truncated = false
	si.blockedIDs = nil
	if si.shuffler != nil {
		si.shuffler.Reseed(si.cfg.Seed)
	}
}

// pendLen, pendFirst, pendPush and the admit loop manage the pending
// window [pendHead:len(pending)).
//
//wormvet:hotpath
func (si *Sim) pendLen() int { return len(si.pending) - si.pendHead }

//wormvet:hotpath
func (si *Sim) pendFirst() uint64 { return si.pending[si.pendHead] }

// pendPush inserts release key k into the pending window, keeping it
// sorted; k lands before the first strictly larger entry (keys are
// unique — the id half discriminates same-release entries, including
// the old ids fault retries re-insert). Amortized allocation-free: when
// the backing array is exhausted the live window is compacted to the
// front first.
func (si *Sim) pendPush(k uint64) {
	if len(si.pending) == cap(si.pending) && si.pendHead > 0 {
		n := copy(si.pending, si.pending[si.pendHead:])
		si.pending = si.pending[:n]
		si.pendHead = 0
	}
	live := si.pending[si.pendHead:]
	pos := sort.Search(len(live), func(i int) bool { return live[i] > k })
	si.pending = append(si.pending, 0)
	live = si.pending[si.pendHead:]
	copy(live[pos+1:], live[pos:])
	live[pos] = k
}

// policyKey computes a worm's arbitration-order key (see worm.key). The
// worm index always rides in the low 32 bits, so a key doubles as a
// reference to its worm (see wormK).
//
//wormvet:keypack
func (si *Sim) policyKey(release, id int) uint64 {
	if si.cfg.Arbitration == ArbAge {
		return uint64(release)<<32 | uint64(uint32(id))
	}
	return uint64(uint32(id))
}

// relKey encodes (release, id) so that uint64 order is exactly
// (release, id) order — the pending list's invariant ordering under every
// policy. Like policy keys, the low 32 bits are the worm index.
//
//wormvet:keypack
func relKey(release, id int) uint64 {
	return uint64(release)<<32 | uint64(uint32(id))
}

// keyRelease extracts the release (upper) half of a packed
// (release, id) key: the step at which the worm becomes eligible.
//
//wormvet:keypack
//wormvet:nonalloc
func keyRelease(k uint64) int { return int(k >> 32) }

// keyID extracts the worm-index (lower) half of a packed key.
//
//wormvet:keypack
//wormvet:nonalloc
func keyID(k uint64) int { return int(uint32(k)) }

// wormK resolves a list entry (policy or release key) to its worm.
//
//wormvet:hotpath
func (si *Sim) wormK(k uint64) *worm { return si.worm(keyID(k)) }

// markPathRoles folds one message's path into the edge-role
// classification. When the classification turns mixed with worms already
// parked (only possible in incremental mode — batch loads classify
// everything before the first step), the free-slot-count decisions behind
// those parks are stale, so every parked worm is flushed back to the
// active list; all later wakes use the whole-queue rule.
func (si *Sim) markPathRoles(p []int32) {
	if si.finalSeen == nil || si.mixedFinal || len(p) == 0 {
		return
	}
	last := p[len(p)-1]
	si.finalSeen[last] = true
	if si.bodySeen[last] {
		si.mixedFinal = true
	}
	for _, e := range p[:len(p)-1] {
		si.bodySeen[e] = true
		if si.finalSeen[e] {
			si.mixedFinal = true
		}
	}
	if si.mixedFinal && si.parked > 0 {
		si.flushParked()
	}
}

// validateArch rejects nonsensical buffer-architecture and hysteresis
// settings; both constructors share it (the batch path panics on the
// returned error, the incremental path returns it). Every rejection
// wraps ErrBadConfig or — for the 32-bit time-counter bound —
// ErrOverHorizon, so callers can errors.Is-classify it.
func validateArch(cfg Config) error {
	if cfg.LaneDepth < 0 {
		return fmt.Errorf("%w: LaneDepth %d < 0", ErrBadConfig, cfg.LaneDepth)
	}
	if cfg.ParkStreak < 0 {
		return fmt.Errorf("%w: ParkStreak %d < 0", ErrBadConfig, cfg.ParkStreak)
	}
	if cfg.MaxSteps > MaxHorizon {
		return fmt.Errorf("%w: MaxSteps %d exceeds MaxHorizon %d", ErrOverHorizon, cfg.MaxSteps, MaxHorizon)
	}
	if cfg.Shards < 0 || cfg.Shards > 256 {
		return fmt.Errorf("%w: Shards %d outside [0, 256]", ErrBadConfig, cfg.Shards)
	}
	return nil
}

// validateBatch applies the batch wrapper's workload checks, returning
// the same typed error family the incremental path (NewSim, Inject)
// uses: ErrBadConfig, ErrBadMessage, ErrOverHorizon.
func validateBatch(s *message.Set, release []int, cfg Config) error {
	if cfg.VirtualChannels < 1 {
		return fmt.Errorf("%w: VirtualChannels %d < 1", ErrBadConfig, cfg.VirtualChannels)
	}
	if err := validateArch(cfg); err != nil {
		return err
	}
	if err := validateFaults(s.G.NumEdges(), cfg); err != nil {
		return err
	}
	if release != nil && len(release) != s.Len() {
		return fmt.Errorf("%w: %d release times for %d messages", ErrBadMessage, len(release), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		msg := s.Get(message.ID(i))
		if msg.Length > MaxHorizon || len(msg.Path) > MaxHorizon {
			return fmt.Errorf("%w: message %d length %d / path %d exceeds MaxHorizon", ErrOverHorizon, i, msg.Length, len(msg.Path))
		}
		if release == nil {
			continue
		}
		if release[i] < 0 {
			return fmt.Errorf("%w: negative release time for message %d", ErrBadMessage, i)
		}
		if release[i] > MaxHorizon {
			return fmt.Errorf("%w: release time %d for message %d exceeds MaxHorizon", ErrOverHorizon, release[i], i)
		}
	}
	return nil
}

// newBatchSim loads a complete message set, deriving the MaxSteps safety
// bound from the workload when the config leaves it at 0 (which is only
// meaningful here: the batch workload is finite and fully known). A bad
// workload panics with the typed validation error — RunChecked is the
// non-panicking front end.
func newBatchSim(s *message.Set, release []int, cfg Config) *Sim {
	if err := validateBatch(s, release, cfg); err != nil {
		panic(err)
	}
	n := s.Len()
	si := emptySim(s.G.NumEdges(), cfg)
	si.pending = make([]uint64, 0, n)
	si.active = make([]uint64, 0, n)
	work := 0
	maxRelease := 0
	for i := 0; i < n; i++ {
		msg := s.Get(message.ID(i))
		rel := 0
		if release != nil {
			rel = release[i]
		}
		if rel > maxRelease {
			maxRelease = rel
		}
		p := si.arena.alloc(len(msg.Path))
		for j, e := range msg.Path {
			p[j] = int32(e)
		}
		w, id := si.addWorm()
		*w = worm{
			id:          int32(id), //wormvet:allow horizon -- addWorm pins id < MaxHorizon
			path:        p,
			d:           int32(len(msg.Path)), //wormvet:allow horizon -- validateBatch bounds len(msg.Path) ≤ MaxHorizon above
			l:           int32(msg.Length),    //wormvet:allow horizon -- validateBatch bounds msg.Length ≤ MaxHorizon above
			release:     int32(rel),
			key:         si.policyKey(rel, id),
			injectTime:  -1,
			deliverTime: -1,
			dropTime:    -1,
			parkedAt:    -1,
			lastInj:     -1,
			stretched:   true,
			blockedOn:   -1,
		}
		if si.deepMode {
			w.prog = si.newProg(msg.Length)
			// A deep step may move as little as one flit, so the safety
			// bound counts flit moves (L·D per worm), not worm moves.
			work += len(p)*msg.Length + msg.Length
		} else {
			work += len(p) + msg.Length
		}
		si.markPathRoles(p)
		si.pending = append(si.pending, relKey(rel, id))
	}
	if si.maxSteps == 0 {
		// Any non-deadlocked run advances at least one worm per step, so
		// total steps ≤ maxRelease + Σ(D_i + L_i). Deadlocks are detected
		// separately, so this bound is a pure safety net.
		si.maxSteps = maxRelease + work + n + 16
		if si.maxSteps > MaxHorizon {
			si.maxSteps = MaxHorizon
		}
	}
	// Pending is kept sorted by (release, id) — for release keys, plain
	// integer order; worms enter the active list in that order, which all
	// policies treat as the base ordering.
	slices.Sort(si.pending)
	return si
}

// Drain runs the simulation until every injected message has completed,
// a deadlock freezes the network (Deadlocked), or the MaxSteps horizon is
// exceeded (Truncated). Unlike repeated Step calls, Drain fast-forwards
// across gaps where no message is eligible, so idle time costs nothing;
// batch Run is exactly load-everything-then-Drain.
//
//wormvet:hotpath
func (si *Sim) Drain() {
	for si.inFlight() > 0 || si.pendLen() > 0 {
		// Fast-forward across gaps where nothing is eligible — but never
		// past the horizon: a release beyond MaxSteps truncates the run
		// at the horizon instead of executing steps past the bound that
		// Step() enforces.
		if si.inFlight() == 0 && keyRelease(si.pendFirst()) > si.now {
			prev := si.now
			si.now = keyRelease(si.pendFirst())
			if si.now > si.maxSteps {
				si.now = si.maxSteps
			}
			if m := si.met; m != nil && si.now > prev {
				m.Jump(int64(si.now - prev))
			}
		}
		if si.now >= si.maxSteps {
			si.truncated = true
			return
		}
		si.admit()
		si.step()
	}
}

// inFlight counts released, incomplete worms the stepper still owes work
// to: the active list plus — for the policies that remove them from it —
// parked worms. (Under ArbRandom and the naive scan, parked worms never
// leave the active list, so the list length alone is the count.)
//
//wormvet:hotpath
func (si *Sim) inFlight() int {
	n := len(si.active)
	if !si.naive && si.cfg.Arbitration != ArbRandom {
		n += si.parked
	}
	return n
}

// admit moves pending worms whose release has arrived onto the active list.
//
//wormvet:hotpath
func (si *Sim) admit() {
	for si.pendHead < len(si.pending) && keyRelease(si.pending[si.pendHead]) <= si.now {
		idx := keyID(si.pending[si.pendHead])
		si.pendHead++
		si.enqueue(idx)
	}
	if si.pendHead == len(si.pending) && si.pendHead > 0 {
		// Window empty: rewind so the array is reused from the front.
		si.pending = si.pending[:0]
		si.pendHead = 0
	}
}

// enqueue places a newly released worm into the active-order structures.
// The wakeup engine keeps the active list directly in policy order (ID
// for ArbByID, (release, id) for ArbAge); the naive scan and ArbRandom
// append in admission order, with ArbByID's lazily materialized ID view
// maintained on the side exactly as before.
//
//wormvet:hotpath
func (si *Sim) enqueue(idx int) {
	key := si.worm(idx).key
	if !si.naive && si.cfg.Arbitration != ArbRandom {
		si.insertActive(key)
		return
	}
	if si.cfg.Arbitration == ArbByID {
		// Under ArbByID the policy key is the bare worm index, so key
		// comparisons below are ID comparisons.
		if n := len(si.active); si.byID == nil && n > 0 && key < si.active[n-1] {
			// First out-of-order admission: active is still ID-sorted,
			// so it seeds the ID-ordered view (worm indices are IDs).
			si.byID = append(make([]uint64, 0, cap(si.active)), si.active...) //wormvet:allow hotalloc -- one-time lazy materialization of the ID-ordered view
		}
		if si.byID != nil {
			pos := sort.Search(len(si.byID), func(i int) bool { return si.byID[i] >= key }) //wormvet:allow hotalloc -- binary search; the closure does not escape (escape harness)
			si.byID = append(si.byID, 0)
			copy(si.byID[pos+1:], si.byID[pos:])
			si.byID[pos] = key
		}
	}
	si.active = append(si.active, key)
}

// step advances the simulation by one flit step.
//
//wormvet:hotpath
func (si *Sim) step() {
	if si.faults != nil && si.faultIdx < len(si.faults) && si.faults[si.faultIdx].Step <= si.now {
		// A StepTo/Drain jump skipped scheduled fault events; apply them
		// directly before any advance attempt sees this step's state.
		si.applyFaults(si.now, true)
	}
	if m := si.met; m != nil {
		m.Inc(telemetry.CtrSteps)
	}
	switch {
	case si.naive:
		if m := si.met; m != nil && si.shards > 1 {
			m.Inc(telemetry.CtrShardFallback)
		}
		si.stepNaive()
	case si.shardable():
		if m := si.met; m != nil {
			m.Inc(telemetry.CtrShardedSteps)
		}
		si.stepSharded()
	default:
		if m := si.met; m != nil && si.shards > 1 {
			m.Inc(telemetry.CtrShardFallback)
		}
		si.stepWakeup()
	}
}

// stepNaive is the retained original stepper — the differential oracle
// for the wakeup engine: every active worm is re-attempted every step,
// stalls are stamped eagerly, and nothing is ever parked.
//
//wormvet:hotpath
func (si *Sim) stepNaive() {
	order := si.active
	switch {
	case si.cfg.Arbitration == ArbRandom:
		si.orderScratch = append(si.orderScratch[:0], si.active...)
		order = si.orderScratch
		si.shuffler.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] }) //wormvet:allow hotalloc -- shuffle swap closure does not escape (escape harness)
	case si.cfg.Arbitration == ArbByID && si.byID != nil:
		// Staggered releases broke the active list's ID order; use the
		// incrementally maintained ID-ordered view.
		order = si.byID
	}

	moved := false
	droppedAny := false
	faultActed := false
	anyEligible := len(order) > 0
	blocked := si.blockedScratch[:0]

	for _, k := range order {
		w := si.wormK(k)
		ok, failEdge := si.tryMove(w)
		if ok {
			moved = true
			continue
		}
		// Failed to advance.
		if si.cfg.DropOnDelay {
			si.drop(w) //wormvet:allow hotalloc -- drop path: per-drop cost is accepted in drop-on-delay runs
			droppedAny = true
			continue
		}
		w.stalls++
		si.totalStalls++
		if si.faultRetriable(w, failEdge) {
			si.faultRetry(w) //wormvet:allow hotalloc -- fault-retry path: per-retry cost accepted under an outage
			faultActed = true
			continue
		}
		blocked = append(blocked, message.ID(w.id))
	}
	si.blockedScratch = blocked

	si.applyStepEnd()
	si.now++
	si.reap()

	if si.cfg.CheckInvariants {
		si.checkInvariants() //wormvet:allow hotalloc -- debug-gated by Config.CheckInvariants
	}

	if !moved && !droppedAny && !faultActed && anyEligible && !si.deadlockDeferred() {
		// Every eligible worm is slot-blocked and slots free only when
		// worms move; future releases cannot free slots, and no scheduled
		// revival remains that could. Frozen forever.
		si.deadlocked = true
		si.blockedIDs = append([]message.ID(nil), blocked...) //wormvet:allow hotalloc -- deadlock teardown: terminal, runs at most once
		si.finishAsDeadlocked()                               //wormvet:allow hotalloc -- deadlock teardown: terminal, runs at most once
	}
}

// tryMove dispatches a worm's advance attempt to the engine the buffer
// architecture selects: the rigid single-counter engine for the paper's
// d = 1 static model, the flit-level deep engine otherwise.
//
//wormvet:hotpath
func (si *Sim) tryMove(w *worm) (bool, int32) {
	if si.deepMode {
		return si.tryAdvanceDeep(w)
	}
	return si.tryAdvance(w)
}

// crossStamp is the epoch tag for this step's crossings entries: step+1
// in the upper 32 bits (the +1 keeps the first step distinct from the
// zero-initialized array). An entry below the stamp is from an earlier
// step and reads as zero crossings.
//
//wormvet:keypack
//wormvet:hotpath
func (si *Sim) crossStamp() uint64 { return uint64(si.now+1) << 32 }

// tryAdvance attempts to move worm w one step, honoring buffer and
// bandwidth constraints. On success it performs the move and returns
// true. A slot failure returns the full edge, telling the wakeup engine
// where to park the worm (only a slot event on that edge can change the
// verdict). A bandwidth failure returns -1: crossing capacity resets
// every step, so the block is transient and the worm must simply retry.
//
//wormvet:hotpath
func (si *Sim) tryAdvance(w *worm) (bool, int32) {
	if w.d == 0 {
		// Source equals destination: delivered in the step after release.
		// Event times follow the Config.Observer convention — an event
		// processed in the step from t to t+1 reports time t+1 — exactly
		// like every positive-length path.
		w.frontier = w.l // mark complete
		w.status = StatusDelivered
		w.injectTime = int32(si.now + 1)
		w.deliverTime = int32(si.now + 1)
		si.delivered++
		si.freeProg(w)
		if m := si.met; m != nil {
			m.Inc(telemetry.CtrInjects)
			m.Inc(telemetry.CtrDelivers)
		}
		if tr := si.trc; tr != nil {
			tr.Inject(si.now+1, w.id, w.d)
			tr.Deliver(si.now+1, w.id, 0)
		}
		if obs := si.cfg.Observer; obs != nil {
			obs.OnDeliver(si.now+1, message.ID(w.id)) //wormvet:allow hotalloc -- per-event observer hook; nil in measured configs
		}
		if cb := si.cfg.OnComplete; cb != nil {
			cb(message.ID(w.id), w.messageStats()) //wormvet:allow hotalloc -- once-per-message completion hook
		}
		return true, -1
	}
	path := w.path
	// Fault plane: a dead edge grants no new reservations — the header
	// may not extend onto it. Flits behind the header are established
	// reservations and keep draining through the bandwidth loop below.
	if dead := si.deadEdge; dead != nil && w.frontier < w.d && dead[path[w.frontier]] {
		e := path[w.frontier]
		if m := si.met; m != nil {
			m.EdgeStall(telemetry.CtrStallFault, e)
		}
		return false, e | parkFaultBit
	}
	// Buffer constraint: crossing edge path[frontier] requires a free slot
	// unless it is the final edge (delivery buffer is external).
	needSlot := int32(-1)
	if w.frontier < w.d-1 {
		e := path[w.frontier]
		if si.laneFree[e] <= 0 {
			if m := si.met; m != nil {
				m.EdgeStall(telemetry.CtrStallLaneCredit, e)
			}
			return false, e
		}
		needSlot = e
	}
	// Bandwidth constraint: every edge a flit of this worm would cross
	// this step must still have crossing capacity.
	stamp := si.crossStamp()
	lo, hi := w.crossed()
	for i := lo; i <= hi; i++ {
		if cw := si.crossings[path[i]]; cw >= stamp && int32(cw-stamp) >= si.capI32 {
			if m := si.met; m != nil {
				m.EdgeStall(telemetry.CtrStallBandwidth, path[i])
			}
			return false, -1
		}
	}
	// Commit.
	if needSlot >= 0 {
		si.laneFree[needSlot]--
		si.touchMax(needSlot)
	}
	for i := lo; i <= hi; i++ {
		e := path[i]
		cw := si.crossings[e]
		if cw < stamp {
			cw = stamp
		}
		si.crossings[e] = cw + 1
	}
	si.flitHops += int64(hi - lo + 1)
	// Tail release: the slot at path[frontier−L] frees when the tail flit
	// leaves it (visible next step).
	if rel := w.frontier - w.l; rel >= 0 && rel <= w.d-2 {
		e := path[rel]
		si.relLane[e]++
		si.touch(e)
	}
	if w.injectTime < 0 {
		w.injectTime = int32(si.now + 1)
		if m := si.met; m != nil {
			m.Inc(telemetry.CtrInjects)
		}
		if tr := si.trc; tr != nil {
			tr.Inject(si.now+1, w.id, w.d)
		}
	}
	w.frontier++
	if m := si.met; m != nil {
		m.Inc(telemetry.CtrAdvances)
	}
	if tr := si.trc; tr != nil {
		tr.Advance(si.now+1, w.id, w.frontier)
	}
	if obs := si.cfg.Observer; obs != nil {
		obs.OnAdvance(si.now+1, message.ID(w.id), int(w.frontier)) //wormvet:allow hotalloc -- per-event observer hook; nil in measured configs
	}
	if w.complete() {
		w.status = StatusDelivered
		w.deliverTime = int32(si.now + 1)
		si.delivered++
		if m := si.met; m != nil {
			m.Inc(telemetry.CtrDelivers)
		}
		if tr := si.trc; tr != nil {
			tr.Deliver(si.now+1, w.id, w.deliverTime-w.injectTime)
		}
		// The path is never consulted again; freeing it shrinks a
		// completed worm to its fixed-size struct and stats. (The struct
		// itself is retained so IDs keep indexing worms and Result can
		// report per-message stats; a long-lived open-loop Sim therefore
		// still grows by ~one small struct per message.)
		si.freePath(w)
		if obs := si.cfg.Observer; obs != nil {
			obs.OnDeliver(si.now+1, message.ID(w.id)) //wormvet:allow hotalloc -- per-delivery observer hook; nil in measured configs
		}
		if cb := si.cfg.OnComplete; cb != nil {
			cb(message.ID(w.id), w.messageStats()) //wormvet:allow hotalloc -- once-per-message completion hook
		}
	} else {
		w.status = StatusActive
	}
	return true, -1
}

// drop discards worm w, releasing all buffer credits it occupies (visible
// next step, like any other release).
func (si *Sim) drop(w *worm) {
	if si.deepMode {
		si.releaseDeepWorm(w)
	} else if lo, hi, ok := w.span(); ok {
		for i := lo; i <= hi; i++ {
			e := w.path[i]
			si.relLane[e]++
			si.touch(e)
		}
	}
	w.status = StatusDropped
	w.dropTime = int32(si.now + 1)
	si.freePath(w)
	si.freeProg(w)
	si.dropped++
	if m := si.met; m != nil {
		m.Inc(telemetry.CtrDrops)
	}
	if tr := si.trc; tr != nil {
		tr.Drop(si.now+1, w.id, w.frontier)
	}
	if obs := si.cfg.Observer; obs != nil {
		obs.OnDrop(si.now+1, message.ID(w.id))
	}
	if cb := si.cfg.OnComplete; cb != nil {
		cb(message.ID(w.id), w.messageStats())
	}
}

// freePath retires a finished worm's path buffer: recycled through the
// freelist in incremental mode, left to the arena otherwise.
//
//wormvet:hotpath
func (si *Sim) freePath(w *worm) {
	if si.recycle && cap(w.path) > 0 {
		si.pathFree = append(si.pathFree, w.path[:0])
	}
	w.path = nil
}

// newPath returns a buffer for n path edges, reusing a retired buffer
// when one fits and bumping the arena otherwise.
func (si *Sim) newPath(n int) []int32 {
	if k := len(si.pathFree); k > 0 && n > 0 && cap(si.pathFree[k-1]) >= n {
		p := si.pathFree[k-1][:n]
		si.pathFree = si.pathFree[:k-1]
		return p
	}
	return si.arena.alloc(n)
}

// touch records an edge with a credit release for end-of-step folding
// and wake checks, once per edge per step. Body-flit crossings are
// epoch-stamped and need neither; grant-only edges go through touchMax.
//
//wormvet:hotpath
func (si *Sim) touch(e int32) {
	if si.dirtyFlag[e]&1 == 0 {
		si.dirtyFlag[e] |= 1
		si.dirty = append(si.dirty, e)
	}
}

// touchMax records an edge that received a credit grant, for the
// MaxOccupied probe at step end. A grant can never wake a waiter — free
// credit only falls within a step, and every parked worm already failed
// against a level at least this high — so grant-only edges skip the fold
// and wake machinery entirely.
//
//wormvet:hotpath
func (si *Sim) touchMax(e int32) {
	if si.dirtyFlag[e]&2 == 0 {
		si.dirtyFlag[e] |= 2
		si.dirtyMax = append(si.dirtyMax, e)
	}
}

// applyStepEnd folds this step's deferred releases into the in-place
// credit counters and — in the wakeup engine — wakes worms parked on any
// edge that saw a credit event (lane or, in deep mode, flit grant or
// release) this step. Those are exactly the events that can unblock a
// credit-parked worm: free credit only rises through releases, and a
// within-step grant (which could consume headroom ahead of a
// later-ordered contender) can only exist in the very step the worm
// parked. Body-flit crossings move no credit state — and, epoch-stamped,
// need no reset — so a worm queue is not re-scanned on every transit.
//
//wormvet:hotpath
func (si *Sim) applyStepEnd() {
	m := si.met
	if m != nil {
		m.StepGauges(len(si.dirty), si.parked)
	}
	if si.faults != nil {
		// Fold fault events first: kills debit credits before waiters are
		// counted, revives ride the relLane fold below like any release.
		si.applyFaults(si.now+1, false)
	}
	for _, e := range si.dirty {
		si.dirtyFlag[e] = 0
		si.laneFree[e] += si.relLane[e]
		si.relLane[e] = 0
		var occ int32
		if si.deepMode {
			si.flitFree[e] += si.relFlit[e]
			si.relFlit[e] = 0
			occ = si.poolCap - si.flitFree[e]
		} else {
			occ = si.bI32 - si.laneFree[e]
		}
		occ -= si.killedDebt(e)
		if int(occ) > si.maxOccupied {
			si.maxOccupied = int(occ)
		}
		if m != nil {
			// Dirty edges are exactly the ones whose persistent occupancy
			// can have changed, so folding the integral here is exact.
			m.EdgeOccupancy(e, int64(occ), int64(si.now)+1)
		}
		if tr := si.trc; tr != nil {
			tr.Credit(si.now+1, e, occ)
		}
		if si.waitQ != nil && (len(si.waitQ[e]) > 0 ||
			(si.waitQFlit != nil && len(si.waitQFlit[e]) > 0)) {
			si.wakeEdge(e)
		}
	}
	si.dirty = si.dirty[:0]
	// Grant-only edges: occupancy may have peaked, nothing else owed.
	// (An edge also on the release list was fully handled above.)
	for _, e := range si.dirtyMax {
		if si.dirtyFlag[e] == 0 {
			continue
		}
		si.dirtyFlag[e] = 0
		var occ int32
		if si.deepMode {
			occ = si.poolCap - si.flitFree[e]
		} else {
			occ = si.bI32 - si.laneFree[e]
		}
		occ -= si.killedDebt(e)
		if int(occ) > si.maxOccupied {
			si.maxOccupied = int(occ)
		}
		if m != nil {
			m.EdgeOccupancy(e, int64(occ), int64(si.now)+1)
		}
	}
	si.dirtyMax = si.dirtyMax[:0]
	si.mergeWoken()
}

// reap removes completed and dropped worms from the active list (and the
// ID-ordered view, when materialized), preserving order. Only the naive
// scan needs it; the wakeup stepper filters inline.
//
//wormvet:hotpath
func (si *Sim) reap() {
	si.active = si.reapList(si.active)
	if si.byID != nil {
		si.byID = si.reapList(si.byID)
	}
}

//wormvet:hotpath
func (si *Sim) reapList(list []uint64) []uint64 {
	keep := list[:0]
	for _, k := range list {
		w := si.wormK(k)
		st := w.status
		if st == StatusDelivered || st == StatusDropped || st == StatusAborted {
			continue
		}
		// A fault-retried worm went back to pending with a future
		// release; it re-enters the active structures on admission.
		if st == StatusWaiting && int(w.release) > si.now {
			continue
		}
		keep = append(keep, k)
	}
	return keep
}

// finishAsDeadlocked empties the worm lists so run() terminates.
func (si *Sim) finishAsDeadlocked() {
	if si.deadEdges > 0 || si.killedTotal > 0 {
		// Dead resources are still present: the freeze is (at least
		// partly) fault-induced, not purely a channel-dependency cycle.
		si.faultDead = true
	}
	si.active = si.active[:0]
	si.pending = si.pending[:0]
	si.pendHead = 0
}

// lanesInUse returns edge e's persistent lane occupancy (worms buffered in
// the rigid model, distinct worms in deep mode) — the quantity the
// pre-arena engine kept as slotsUsed. Invariant checks and tests use it.
//
//wormvet:hotpath
func (si *Sim) lanesInUse(e int) int32 {
	n := si.bI32 - si.laneFree[e]
	if si.killedLanes != nil {
		n -= si.killedLanes[e]
	}
	return n
}

// flitsInUse returns edge e's persistent flit occupancy (deep mode).
//
//wormvet:hotpath
func (si *Sim) flitsInUse(e int) int32 {
	n := si.poolCap - si.flitFree[e]
	if si.killedLanes != nil {
		n -= si.killedLanes[e] * si.depth
	}
	return n
}

// checkInvariants asserts model invariants; it panics on violation so test
// failures pinpoint the first bad step.
func (si *Sim) checkInvariants() {
	if si.deepMode {
		si.checkInvariantsDeep()
		return
	}
	// Dense per-edge counters, walked in edge order: with a map here a
	// multi-edge violation would surface whichever panic Go's randomized
	// map iteration reached first, making failure output flap run to run.
	occ := make([]int32, len(si.laneFree))
	for i := 0; i < si.numWorms; i++ {
		w := si.worm(i)
		if w.status == StatusDropped || w.status == StatusDelivered || w.status == StatusAborted {
			continue
		}
		if lo, hi, ok := w.span(); ok {
			for j := lo; j <= hi; j++ {
				occ[w.path[j]]++
			}
		}
	}
	for e, c := range occ {
		if c != si.lanesInUse(e) {
			if c == 0 {
				panic(fmt.Sprintf("vcsim: step %d: edge %d has stale occupancy %d", si.now, e, si.lanesInUse(e)))
			}
			panic(fmt.Sprintf("vcsim: step %d: edge %d occupancy %d but slots in use %d", si.now, e, c, si.lanesInUse(e)))
		}
		if c > si.bI32 {
			panic(fmt.Sprintf("vcsim: step %d: edge %d holds %d > B=%d flits", si.now, e, c, si.b))
		}
	}
}

// Result snapshots the simulation state into a Result. It can be called
// at any point in a Sim's life; per-message stats of in-flight messages
// appear with their current (partial) values.
func (si *Sim) Result() Result {
	si.drainShardMetrics()
	if m := si.met; m != nil {
		// Result calls are snapshot boundaries: sample arena occupancy here
		// rather than on the hot path.
		var used, total int64
		for i, c := range si.arena.chunks {
			total += int64(len(c))
			if i < si.arena.cur {
				used += int64(len(c))
			}
		}
		if si.arena.cur < len(si.arena.chunks) {
			used += int64(si.arena.off)
		}
		m.Arena(used, total)
	}
	si.FoldFaultTime()
	res := Result{
		Delivered:       si.delivered,
		Dropped:         si.dropped,
		Aborted:         si.aborted,
		Deadlocked:      si.deadlocked,
		FaultDeadlocked: si.faultDead,
		Truncated:       si.truncated,
		TotalStalls:     si.totalStalls,
		FlitHops:        si.flitHops,
		MaxOccupied:     si.maxOccupied,
		PerMessage:      make([]MessageStats, si.numWorms),
		BlockedIDs:      si.blockedIDs,
	}
	last := 0
	for i := 0; i < si.numWorms; i++ {
		w := si.worm(i)
		st := w.messageStats()
		// A parked worm's stall credit is stamped lazily; fold the span
		// it has sat parked (it would have failed every one of those
		// steps) into the snapshot without mutating engine state.
		if p := int(w.parkedAt); p >= 0 {
			st.Stalls += si.now - p
			res.TotalStalls += si.now - p
		}
		res.PerMessage[i] = st
		if st.DeliverTime > last {
			last = st.DeliverTime
		}
		if st.DropTime > last {
			last = st.DropTime
		}
	}
	// A deadlocked or truncated run keeps stepping past the last
	// delivery/drop; report the step the run actually stopped, not just
	// the last per-message event.
	if (si.deadlocked || si.truncated) && si.now > last {
		last = si.now
	}
	res.Steps = last
	return res
}
