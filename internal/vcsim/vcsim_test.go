package vcsim

import (
	"testing"
	"testing/quick"

	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/topology"
)

// lineSet builds a linear-array network with msgs identical messages of
// length l spanning the first span edges.
func lineSet(t *testing.T, msgs, span, l int) *message.Set {
	t.Helper()
	g := topology.NewLinearArray(span + 1)
	set := message.NewSet(g)
	route := message.ShortestPathRouter(g)
	for i := 0; i < msgs; i++ {
		set.Add(0, graph.NodeID(span), l, route(0, graph.NodeID(span)))
	}
	return set
}

func TestSingleMessageLatency(t *testing.T) {
	for _, tc := range []struct{ d, l int }{
		{1, 1}, {1, 5}, {4, 1}, {4, 4}, {4, 9}, {9, 3}, {16, 16},
	} {
		set := lineSet(t, 1, tc.d, tc.l)
		res := Run(set, nil, Config{VirtualChannels: 1, CheckInvariants: true})
		want := tc.d + tc.l - 1
		if res.Steps != want {
			t.Errorf("D=%d L=%d: steps = %d, want D+L-1 = %d", tc.d, tc.l, res.Steps, want)
		}
		if !res.AllDelivered() {
			t.Errorf("D=%d L=%d: not delivered", tc.d, tc.l)
		}
		st := res.PerMessage[0]
		if st.InjectTime != 1 {
			t.Errorf("D=%d L=%d: inject time = %d, want 1", tc.d, tc.l, st.InjectTime)
		}
		if st.DeliverTime != want {
			t.Errorf("D=%d L=%d: deliver time = %d, want %d", tc.d, tc.l, st.DeliverTime, want)
		}
		if st.Stalls != 0 {
			t.Errorf("D=%d L=%d: lone message stalled %d times", tc.d, tc.l, st.Stalls)
		}
	}
}

func TestSingleMessageRestrictedBandwidthSameLatency(t *testing.T) {
	// A lone worm crosses each edge with a different flit each step, so
	// the 1-flit-per-edge cap never binds and latency is unchanged.
	set := lineSet(t, 1, 6, 9)
	res := Run(set, nil, Config{VirtualChannels: 3, RestrictedBandwidth: true, CheckInvariants: true})
	if want := 6 + 9 - 1; res.Steps != want {
		t.Errorf("restricted lone worm: steps = %d, want %d", res.Steps, want)
	}
}

func TestTwoDisjointMessagesParallel(t *testing.T) {
	g := graph.New(6, 4)
	g.AddNodes(6)
	e1 := g.AddEdge(0, 1)
	e2 := g.AddEdge(1, 2)
	e3 := g.AddEdge(3, 4)
	e4 := g.AddEdge(4, 5)
	set := message.NewSet(g)
	set.Add(0, 2, 5, graph.Path{e1, e2})
	set.Add(3, 5, 5, graph.Path{e3, e4})
	res := Run(set, nil, Config{VirtualChannels: 1, CheckInvariants: true})
	if want := 2 + 5 - 1; res.Steps != want {
		t.Errorf("disjoint worms: steps = %d, want %d", res.Steps, want)
	}
	if res.TotalStalls != 0 {
		t.Errorf("disjoint worms stalled %d times", res.TotalStalls)
	}
}

func TestSharedEdgeSerializesAtB1(t *testing.T) {
	// Two L-flit worms over the same D-edge path with one virtual channel:
	// the second can only inject after the first's tail frees edge 0.
	const d, l = 4, 6
	set := lineSet(t, 2, d, l)
	res := Run(set, nil, Config{VirtualChannels: 1, CheckInvariants: true})
	if !res.AllDelivered() {
		t.Fatal("not all delivered")
	}
	first := d + l - 1
	if res.PerMessage[0].DeliverTime != first {
		t.Errorf("first worm: %d, want %d", res.PerMessage[0].DeliverTime, first)
	}
	// The second worm's header may enter edge 0 once the first tail has
	// left it (release visible one step later), i.e. around step l+1, and
	// finishes ≈ l+1+d+l-1. Exact timing depends on the release pipeline;
	// bound it tightly instead of hard-coding.
	second := res.PerMessage[1].DeliverTime
	if second < first+l-1 || second > first+l+2 {
		t.Errorf("second worm delivered at %d, want within [%d,%d]", second, first+l-1, first+l+2)
	}
}

func TestBVirtualChannelsSharePhysicalEdge(t *testing.T) {
	// B worms on one shared path all progress simultaneously: the edge
	// carries B flits per step (one per virtual channel), so all B finish
	// in D+L-1 steps — the core of the virtual-channel model.
	const d, l, b = 5, 7, 3
	set := lineSet(t, b, d, l)
	res := Run(set, nil, Config{VirtualChannels: b, CheckInvariants: true})
	if want := d + l - 1; res.Steps != want {
		t.Errorf("B parallel worms: steps = %d, want %d", res.Steps, want)
	}
	if res.TotalStalls != 0 {
		t.Errorf("B worms on B channels stalled %d times", res.TotalStalls)
	}
	if res.MaxOccupied != b {
		t.Errorf("max occupancy %d, want %d", res.MaxOccupied, b)
	}
}

func TestRestrictedBandwidthSerializesFlits(t *testing.T) {
	// Same scenario as above but with 1 flit/edge/step: the B worms share
	// wire bandwidth, so the makespan roughly triples.
	const d, l, b = 5, 7, 3
	set := lineSet(t, b, d, l)
	res := Run(set, nil, Config{VirtualChannels: b, RestrictedBandwidth: true, CheckInvariants: true})
	if !res.AllDelivered() {
		t.Fatal("not all delivered")
	}
	lower := b*l + d - 1 - 1 // edge 0 must carry b·l flits at 1/step
	if res.Steps < lower {
		t.Errorf("restricted makespan %d below serialization floor %d", res.Steps, lower)
	}
	vc := Run(lineSet(t, b, d, l), nil, Config{VirtualChannels: b})
	if res.Steps <= vc.Steps {
		t.Errorf("restricted (%d) should be slower than full VC model (%d)", res.Steps, vc.Steps)
	}
}

func TestExcessWormsQueueBehindBChannels(t *testing.T) {
	// 2B worms over one path with B channels: two waves.
	const d, l, b = 4, 5, 2
	set := lineSet(t, 2*b, d, l)
	res := Run(set, nil, Config{VirtualChannels: b, CheckInvariants: true})
	if !res.AllDelivered() {
		t.Fatal("not all delivered")
	}
	if res.MaxOccupied > b {
		t.Errorf("occupancy %d exceeded B=%d", res.MaxOccupied, b)
	}
	wave1 := d + l - 1
	if res.Steps <= wave1 {
		t.Errorf("2B worms finished in %d ≤ one-wave time %d", res.Steps, wave1)
	}
}

func TestReleaseTimes(t *testing.T) {
	const d, l = 3, 4
	set := lineSet(t, 2, d, l)
	res := Run(set, []int{0, 100}, Config{VirtualChannels: 1, CheckInvariants: true})
	if res.PerMessage[0].DeliverTime != d+l-1 {
		t.Errorf("first: %d", res.PerMessage[0].DeliverTime)
	}
	if want := 100 + d + l - 1; res.PerMessage[1].DeliverTime != want {
		t.Errorf("released worm delivered at %d, want %d", res.PerMessage[1].DeliverTime, want)
	}
	if res.PerMessage[1].Stalls != 0 {
		t.Errorf("released worm stalled %d times", res.PerMessage[1].Stalls)
	}
}

func TestSrcEqualsDst(t *testing.T) {
	g := topology.NewLinearArray(3)
	set := message.NewSet(g)
	set.Add(1, 1, 4, graph.Path{})
	res := Run(set, nil, Config{VirtualChannels: 1})
	if !res.AllDelivered() {
		t.Fatal("self message not delivered")
	}
}

// deadlockSet builds the classic two-worm cyclic-wait instance: worm A
// holds edge P and wants edge Q; worm B holds Q and wants P. Spacer edges
// keep P and Q away from path ends (a worm's final edge needs no buffer,
// so a bare 2-cycle would drain instead of deadlocking).
func deadlockSet() *message.Set {
	g := graph.New(8, 10)
	u := g.AddNode("u")
	v := g.AddNode("v")
	w := g.AddNode("w")
	z := g.AddNode("z")
	sA := g.AddNode("sA")
	tA := g.AddNode("tA")
	sB := g.AddNode("sB")
	tB := g.AddNode("tB")
	p := g.AddEdge(u, v)
	q := g.AddEdge(w, z)
	eAin := g.AddEdge(sA, u)
	eAmid := g.AddEdge(v, w)
	eAout := g.AddEdge(z, tA)
	eBin := g.AddEdge(sB, w)
	eBmid := g.AddEdge(z, u)
	eBout := g.AddEdge(v, tB)
	set := message.NewSet(g)
	set.Add(sA, tA, 5, graph.Path{eAin, p, eAmid, q, eAout})
	set.Add(sB, tB, 5, graph.Path{eBin, q, eBmid, p, eBout})
	return set
}

func TestDeadlockDetection(t *testing.T) {
	res := Run(deadlockSet(), nil, Config{VirtualChannels: 1, CheckInvariants: true})
	if !res.Deadlocked {
		t.Fatalf("expected deadlock, got steps=%d delivered=%d", res.Steps, res.Delivered)
	}
	if len(res.BlockedIDs) != 2 {
		t.Errorf("blocked set = %v, want both messages", res.BlockedIDs)
	}
	if res.AllDelivered() {
		t.Error("deadlocked run cannot deliver everything")
	}
}

func TestDeadlockResolvedByMoreChannels(t *testing.T) {
	// The same cyclic instance routes fine with 2 virtual channels — the
	// Dally–Seitz motivation for virtual channels in the first place.
	res := Run(deadlockSet(), nil, Config{VirtualChannels: 2, CheckInvariants: true})
	if res.Deadlocked {
		t.Fatal("deadlock should vanish with B=2")
	}
	if !res.AllDelivered() {
		t.Fatal("not all delivered with B=2")
	}
}

func TestDropOnDelay(t *testing.T) {
	// Two worms fight for one channel; drop-on-delay discards the loser
	// at its first failed advance.
	const d, l = 4, 6
	set := lineSet(t, 2, d, l)
	res := Run(set, nil, Config{VirtualChannels: 1, DropOnDelay: true, CheckInvariants: true})
	if res.Delivered != 1 || res.Dropped != 1 {
		t.Fatalf("delivered=%d dropped=%d, want 1/1", res.Delivered, res.Dropped)
	}
	if res.PerMessage[1].Status != StatusDropped {
		t.Errorf("message 1 status = %v, want dropped (ArbByID favors message 0)", res.PerMessage[1].Status)
	}
	if res.PerMessage[1].DropTime != 1 {
		t.Errorf("drop time = %d, want 1 (dropped at first step)", res.PerMessage[1].DropTime)
	}
	if got := len(res.DroppedIDs()); got != 1 {
		t.Errorf("DroppedIDs has %d entries", got)
	}
}

func TestTruncation(t *testing.T) {
	set := lineSet(t, 2, 4, 6)
	res := Run(set, nil, Config{VirtualChannels: 1, MaxSteps: 3})
	if !res.Truncated {
		t.Fatal("expected truncation at MaxSteps=3")
	}
}

func TestArbAgePrioritizesEarlierRelease(t *testing.T) {
	const d, l = 4, 8
	set := lineSet(t, 2, d, l)
	// Message 1 released earlier; under ArbAge it must win the channel.
	res := Run(set, []int{5, 0}, Config{VirtualChannels: 1, Arbitration: ArbAge, CheckInvariants: true})
	if res.PerMessage[1].DeliverTime != d+l-1 {
		t.Errorf("early-released worm delivered at %d, want unimpeded %d",
			res.PerMessage[1].DeliverTime, d+l-1)
	}
	if res.PerMessage[0].DeliverTime <= res.PerMessage[1].DeliverTime {
		t.Error("later release should finish later")
	}
}

func TestArbRandomIsSeedDeterministic(t *testing.T) {
	set := lineSet(t, 6, 5, 5)
	a := Run(set, nil, Config{VirtualChannels: 2, Arbitration: ArbRandom, Seed: 9})
	b := Run(set, nil, Config{VirtualChannels: 2, Arbitration: ArbRandom, Seed: 9})
	if a.Steps != b.Steps || a.TotalStalls != b.TotalStalls {
		t.Error("same seed must reproduce the same run")
	}
	for i := range a.PerMessage {
		if a.PerMessage[i].DeliverTime != b.PerMessage[i].DeliverTime {
			t.Fatalf("message %d differs across identical runs", i)
		}
	}
}

func TestFlitHopsConservation(t *testing.T) {
	// Every delivered worm crosses exactly D·L flit-edges.
	const d, l, msgs = 5, 4, 3
	set := lineSet(t, msgs, d, l)
	res := Run(set, nil, Config{VirtualChannels: 2, CheckInvariants: true})
	if !res.AllDelivered() {
		t.Fatal("not delivered")
	}
	if want := int64(msgs * d * l); res.FlitHops != want {
		t.Errorf("flit hops = %d, want %d", res.FlitHops, want)
	}
}

func TestButterflyPermutationAllDelivered(t *testing.T) {
	bf := topology.NewButterfly(16)
	r := rng.New(3)
	set := message.NewSet(bf.G)
	for src, dst := range r.Perm(16) {
		set.Add(bf.Input(src), bf.Output(dst), 8, bf.Route(src, dst))
	}
	for _, b := range []int{1, 2, 4} {
		res := Run(set, nil, Config{VirtualChannels: b, CheckInvariants: true})
		if res.Deadlocked {
			t.Fatalf("B=%d: butterfly one-pass cannot deadlock (DAG)", b)
		}
		if !res.AllDelivered() {
			t.Fatalf("B=%d: %d/%d delivered", b, res.Delivered, set.Len())
		}
		if res.MaxOccupied > b {
			t.Fatalf("B=%d: occupancy %d", b, res.MaxOccupied)
		}
	}
}

func TestMakespanMonotoneInB(t *testing.T) {
	bf := topology.NewButterfly(32)
	r := rng.New(17)
	set := message.NewSet(bf.G)
	for rep := 0; rep < 4; rep++ {
		for src, dst := range r.Perm(32) {
			set.Add(bf.Input(src), bf.Output(dst), 10, bf.Route(src, dst))
		}
	}
	prev := 1 << 30
	for _, b := range []int{1, 2, 4, 8} {
		res := Run(set, nil, Config{VirtualChannels: b})
		if !res.AllDelivered() {
			t.Fatalf("B=%d undelivered", b)
		}
		if res.Steps > prev {
			t.Errorf("B=%d makespan %d worse than smaller B (%d)", b, res.Steps, prev)
		}
		prev = res.Steps
	}
}

// TestColorClassNeverBlocks verifies the property the Theorem 2.1.6
// schedules rely on: any batch with multiplex size ≤ B, released together,
// routes with zero stalls in exactly maxD+maxL−1 steps.
func TestColorClassNeverBlocks(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		b := 1 + r.Intn(4)
		bf := topology.NewButterfly(16)
		set := message.NewSet(bf.G)
		// Build a batch with per-edge load ≤ b by stacking ≤ b random
		// permutations (each permutation loads each edge ≤ 1 on the
		// butterfly? no — a permutation can load an edge up to min(2^i,..);
		// so instead track loads explicitly and drop violators).
		load := make([]int, bf.G.NumEdges())
		l := 2 + r.Intn(9)
		for try := 0; try < 64; try++ {
			src, dst := r.Intn(16), r.Intn(16)
			p := bf.Route(src, dst)
			ok := true
			for _, e := range p {
				if load[e]+1 > b {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, e := range p {
				load[e]++
			}
			set.Add(bf.Input(src), bf.Output(dst), l, p)
		}
		if set.Len() == 0 {
			continue
		}
		res := Run(set, nil, Config{VirtualChannels: b, CheckInvariants: true})
		if res.TotalStalls != 0 {
			t.Fatalf("trial %d: multiplex ≤ %d batch stalled %d times", trial, b, res.TotalStalls)
		}
		if !res.AllDelivered() {
			t.Fatalf("trial %d: undelivered", trial)
		}
		if want := 4 + l - 1; res.Steps != want {
			t.Fatalf("trial %d: steps %d, want unimpeded %d", trial, res.Steps, want)
		}
	}
}

// TestRandomWorkloadInvariants drives random butterfly workloads through
// the simulator with invariant checking enabled and property-checks the
// result structure.
func TestRandomWorkloadInvariants(t *testing.T) {
	f := func(seed uint64, bRaw uint8, qRaw uint8) bool {
		b := int(bRaw%4) + 1
		q := int(qRaw%3) + 1
		r := rng.New(seed)
		bf := topology.NewButterfly(8)
		set := message.NewSet(bf.G)
		for rep := 0; rep < q; rep++ {
			for src, dst := range r.Perm(8) {
				set.Add(bf.Input(src), bf.Output(dst), 1+int(seed%7), bf.Route(src, dst))
			}
		}
		res := Run(set, nil, Config{VirtualChannels: b, CheckInvariants: true})
		if res.Deadlocked || res.Truncated {
			return false
		}
		if !res.AllDelivered() {
			return false
		}
		if res.MaxOccupied > b {
			return false
		}
		// Every message's latency is at least the unimpeded minimum.
		for i := range res.PerMessage {
			m := set.Get(message.ID(i))
			minLat := len(m.Path) + m.Length - 1
			if lat := res.PerMessage[i].Latency(); lat < minLat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{ArbByID: "by-id", ArbRandom: "random", ArbAge: "age"} {
		if p.String() != want {
			t.Errorf("%d: %q", p, p.String())
		}
	}
	for s, want := range map[Status]string{StatusWaiting: "waiting", StatusActive: "active", StatusDelivered: "delivered", StatusDropped: "dropped"} {
		if s.String() != want {
			t.Errorf("%v: %q", s, want)
		}
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	set := lineSet(t, 1, 2, 2)
	assertPanics(t, "B=0", func() { Run(set, nil, Config{VirtualChannels: 0}) })
	assertPanics(t, "bad releases", func() { Run(set, []int{1, 2}, Config{VirtualChannels: 1}) })
	assertPanics(t, "negative release", func() { Run(set, []int{-1}, Config{VirtualChannels: 1}) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// --- Steps convention for stopped runs ----------------------------------------

// TestDeadlockedStepsReportStopStep is the regression test for deadlocked
// runs reporting Steps from per-message events only: with no deliveries or
// drops, the pre-fix result claimed Steps = 0 even though the worms
// advanced for several steps before freezing.
func TestDeadlockedStepsReportStopStep(t *testing.T) {
	res := Run(deadlockSet(), nil, Config{VirtualChannels: 1, CheckInvariants: true})
	if !res.Deadlocked {
		t.Fatal("expected deadlock")
	}
	if res.Steps == 0 {
		t.Fatal("deadlocked run reported Steps = 0; want the step the run stopped")
	}
	for i := range res.PerMessage {
		if it := res.PerMessage[i].InjectTime; it > res.Steps {
			t.Errorf("message %d injected at %d after reported stop %d", i, it, res.Steps)
		}
	}
}

// TestTruncatedStepsReportStopStep: a MaxSteps-truncated run must report
// the step it was cut off, not the last delivery (here: none).
func TestTruncatedStepsReportStopStep(t *testing.T) {
	set := lineSet(t, 2, 4, 6)
	res := Run(set, nil, Config{VirtualChannels: 1, MaxSteps: 3})
	if !res.Truncated {
		t.Fatal("expected truncation at MaxSteps=3")
	}
	if res.Steps != 3 {
		t.Errorf("truncated run Steps = %d, want MaxSteps = 3", res.Steps)
	}
}

// TestDeadlockedStepsNotBelowLastDelivery: when some worms deliver before
// the rest freeze, Steps must still cover the stop step, which is at or
// after the last delivery.
func TestDeadlockedStepsNotBelowLastDelivery(t *testing.T) {
	// The frozen pair plus one long independent worm released late enough
	// to deliver after the deadlock is detected? Simpler: deliver first,
	// then verify max(lastEvent, stop) keeps the later of the two.
	set := deadlockSet()
	res := Run(set, nil, Config{VirtualChannels: 1})
	last := 0
	for i := range res.PerMessage {
		if dt := res.PerMessage[i].DeliverTime; dt > last {
			last = dt
		}
	}
	if res.Steps < last {
		t.Errorf("Steps %d below last delivery %d", res.Steps, last)
	}
}

// --- zero-length paths --------------------------------------------------------

// zeroObserver records OnDeliver times.
type zeroObserver struct{ deliver []int }

func (z *zeroObserver) OnAdvance(time int, msg message.ID, frontier int) {}
func (z *zeroObserver) OnDrop(time int, msg message.ID)                  {}
func (z *zeroObserver) OnDeliver(time int, msg message.ID)               { z.deliver = append(z.deliver, time) }

// TestZeroLengthPathEventTimes: a source==destination worm follows the
// documented convention — an event processed in the step from t to t+1
// reports t+1 — like every positive-length path (regression: it used to
// stamp t).
func TestZeroLengthPathEventTimes(t *testing.T) {
	g := topology.NewLinearArray(2)
	set := message.NewSet(g)
	set.Add(0, 0, 3, nil)
	obs := &zeroObserver{}
	res := Run(set, nil, Config{VirtualChannels: 1, Observer: obs})
	st := res.PerMessage[0]
	if st.Status != StatusDelivered {
		t.Fatalf("status = %v", st.Status)
	}
	if st.InjectTime != 1 || st.DeliverTime != 1 {
		t.Errorf("inject/deliver = %d/%d, want 1/1 (released at 0, processed in step 0→1)",
			st.InjectTime, st.DeliverTime)
	}
	if len(obs.deliver) != 1 || obs.deliver[0] != st.DeliverTime {
		t.Errorf("OnDeliver times %v disagree with DeliverTime %d", obs.deliver, st.DeliverTime)
	}
	if res.Steps != 1 {
		t.Errorf("Steps = %d, want 1", res.Steps)
	}

	// Staggered release keeps the same convention relative to release.
	res = Run(set, []int{4}, Config{VirtualChannels: 1})
	if dt := res.PerMessage[0].DeliverTime; dt != 5 {
		t.Errorf("release 4: deliver = %d, want 5", dt)
	}
	if lat := res.PerMessage[0].Latency(); lat != 1 {
		t.Errorf("latency = %d, want 1", lat)
	}
}

// --- arbitration under staggered releases -------------------------------------

// contentionSet builds two worms that contend for a shared edge in the
// same flit step while having interleaved (release, ID) orders: message 0
// (short approach, released at 1) and message 1 (long approach, released
// at 0) both attempt the shared edge u→v in the step 2→3.
func contentionSet(t *testing.T, l int) (*message.Set, []int) {
	t.Helper()
	g := graph.New(0, 0)
	s0 := g.AddNode("s0")
	s1 := g.AddNode("s1")
	a := g.AddNode("a")
	u := g.AddNode("u")
	v := g.AddNode("v")
	w := g.AddNode("w")
	e0in := g.AddEdge(s0, u)
	e1in := g.AddEdge(s1, a)
	e1mid := g.AddEdge(a, u)
	uv := g.AddEdge(u, v)
	vw := g.AddEdge(v, w)
	set := message.NewSet(g)
	set.Add(s0, w, l, graph.Path{e0in, uv, vw})
	set.Add(s1, w, l, graph.Path{e1in, e1mid, uv, vw})
	return set, []int{1, 0}
}

// TestArbByIDVsAgeDivergeUnderStaggeredReleases: with interleaved release
// times, ArbByID must favor the lower ID (per its contract) while ArbAge
// favors the earlier release — so each policy stalls the other's winner.
func TestArbByIDVsAgeDivergeUnderStaggeredReleases(t *testing.T) {
	const l = 3
	set, releases := contentionSet(t, l)

	byID := Run(set, releases, Config{VirtualChannels: 1, Arbitration: ArbByID, CheckInvariants: true})
	if !byID.AllDelivered() {
		t.Fatal("by-id: not delivered")
	}
	if s := byID.PerMessage[0].Stalls; s != 0 {
		t.Errorf("by-id: message 0 (lower ID) stalled %d times; it should win the shared edge", s)
	}
	if s := byID.PerMessage[1].Stalls; s == 0 {
		t.Error("by-id: message 1 never stalled; expected it to lose the shared edge")
	}

	age := Run(set, releases, Config{VirtualChannels: 1, Arbitration: ArbAge, CheckInvariants: true})
	if !age.AllDelivered() {
		t.Fatal("age: not delivered")
	}
	if s := age.PerMessage[1].Stalls; s != 0 {
		t.Errorf("age: message 1 (earlier release) stalled %d times; it should win the shared edge", s)
	}
	if s := age.PerMessage[0].Stalls; s == 0 {
		t.Error("age: message 0 never stalled; expected it to lose the shared edge")
	}
}

// TestArbRandomReproducibleUnderStaggeredReleases: for a fixed Seed the
// random policy must reproduce the identical run even when releases
// interleave, and the reference-order policies must not be affected by
// the shuffler's presence.
func TestArbRandomReproducibleUnderStaggeredReleases(t *testing.T) {
	set, releases := contentionSet(t, 4)
	for seed := uint64(0); seed < 8; seed++ {
		a := Run(set, releases, Config{VirtualChannels: 1, Arbitration: ArbRandom, Seed: seed})
		b := Run(set, releases, Config{VirtualChannels: 1, Arbitration: ArbRandom, Seed: seed})
		if a.Steps != b.Steps || a.TotalStalls != b.TotalStalls {
			t.Fatalf("seed %d: same-seed runs differ (steps %d vs %d, stalls %d vs %d)",
				seed, a.Steps, b.Steps, a.TotalStalls, b.TotalStalls)
		}
		for i := range a.PerMessage {
			if a.PerMessage[i] != b.PerMessage[i] {
				t.Fatalf("seed %d: message %d differs across identical runs", seed, i)
			}
		}
	}
}
