package vcsim

// This file is the event-driven stepper: the default engine since the
// blocked-worm wakeup refactor. The naive scan (stepNaive in vcsim.go)
// re-attempts every active worm every step, which makes the saturated
// regime — the interesting one for virtual-channel studies — pay for the
// whole backlog on every step: the more worms are slot-blocked, the more
// futile tryAdvance calls each step performs. The wakeup engine instead
// parks a slot-blocked worm on the wait list of the full edge and skips
// it until that edge sees a slot event (grant or release), the only
// events that can change the verdict:
//
//   - free lane credit only rises when a release on e folds in at a
//     step end, and
//   - a within-step grant on e (which could consume headroom ahead of a
//     later-ordered contender) requires laneFree[e] > 0, so once e is
//     full — which it is from the parking step onward, unless the
//     parking step itself saw a grant or release — no further grant can
//     occur before a release.
//
// Hence a parked worm would have failed, with no side effects, on every
// step it sits on the wait list, and the first slot event on its edge is
// the earliest step after which the verdict can differ. Body-flit
// crossings move no credit state, so a queue of parked worms is *not*
// re-scanned while a worm transits its edge. Bandwidth blocks (the
// RestrictedBandwidth model's per-step crossing cap) are transient —
// crossing capacity resets every step — so a bandwidth-blocked worm is
// never parked; it stays in the active list and retries, exactly like
// the naive scan.
//
// Stall accounting turns lazy under parking: a parked worm is charged
// one stall for every step in its parked span, stamped in bulk at
// wake/deadlock/snapshot time. Every observable — MessageStats,
// arbitration order, deadlock detection, Result — is byte-identical to
// the naive scan under all three policies; the differential tests in
// wakeup_test.go and the retained oracle behind Config.NaiveScan pin
// that equivalence.
//
// Ordering is everywhere driven by worm.key — the precomputed policy key
// (ID, or release<<32|id for ArbAge) — so heap sift-downs, the woken-
// batch sort, and the re-entry merge compare one dense integer instead
// of chasing field pairs through cold worm structs.
//
// ArbRandom is the one policy whose per-step cost keeps an O(active)
// term: the naive scan shuffles the full active list, so the wakeup
// engine must shuffle the identical list (parked worms included) to
// consume the identical RNG stream. Parked worms are still skipped
// without an advance attempt, which is where the time goes.

import (
	"slices"
	"sort"

	"wormhole/internal/message"
	"wormhole/internal/telemetry"
)

// defaultParkStreak is the probation length when Config.ParkStreak is
// zero: a worm parks only after this many consecutive failed steps. Short
// blocked episodes — the common case away from deep saturation — then
// cost exactly what they cost the naive scan (one cheap failed attempt
// per step), while long episodes pay the park/wake machinery once and are
// skipped for their whole remainder. The setting is pure mechanism:
// results are byte-identical for every value (see park hysteresis
// regression tests).
const defaultParkStreak = 8

// stepWakeup advances the simulation by one flit step, attempting only
// worms that can plausibly move.
//
//wormvet:hotpath
func (si *Sim) stepWakeup() {
	random := si.cfg.Arbitration == ArbRandom
	order := si.active
	if random {
		si.orderScratch = append(si.orderScratch[:0], si.active...)
		order = si.orderScratch
		si.shuffler.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] }) //wormvet:allow hotalloc -- shuffle swap closure does not escape (escape harness)
	}

	moved := false
	droppedAny := false
	faultActed := false
	// Parked worms are eligible-but-blocked: they count for deadlock
	// detection exactly as their futile attempts did in the naive scan.
	anyEligible := len(order) > 0 || si.parked > 0

	if random {
		needCompact := false
		for _, k := range order {
			w := si.wormK(k)
			if w.parkedAt >= 0 {
				continue // would fail; charged lazily
			}
			ok, slotEdge := si.tryMove(w)
			switch {
			case ok:
				moved = true
				w.streak = 0
				w.woken = false
				if w.status == StatusDelivered {
					needCompact = true
				}
			case si.cfg.DropOnDelay:
				si.drop(w) //wormvet:allow hotalloc -- drop path: per-drop cost is accepted in drop-on-delay runs
				droppedAny = true
				needCompact = true
			case si.faultRetriable(w, slotEdge):
				// Dead first edge, header still at the source: one stall
				// for the failed attempt (as the naive scan charges), then
				// back to the pending queue — or aborted — immediately, no
				// probation.
				w.stalls++
				si.totalStalls++
				si.faultRetry(w) //wormvet:allow hotalloc -- fault-retry path: per-retry cost accepted under an outage
				faultActed = true
				needCompact = true
			case slotEdge >= 0 && w.streak >= si.parkStreak-1:
				w.streak = 0
				si.park(w, k, slotEdge)
			default:
				// Probation, or a transient bandwidth block (crossing
				// capacity resets every step): retry next step.
				w.streak++
				w.stalls++
				si.totalStalls++
			}
		}
		if needCompact {
			si.active = si.reapList(si.active)
		}
	} else {
		// The active list is maintained directly in policy order, so it
		// is the order; compact it in place as worms complete or park
		// (the write cursor never passes the read position).
		keep := si.active[:0]
		for _, k := range order {
			w := si.wormK(k)
			ok, slotEdge := si.tryMove(w)
			switch {
			case ok:
				moved = true
				w.streak = 0
				w.woken = false
				if w.status != StatusDelivered {
					keep = append(keep, k)
				}
			case si.cfg.DropOnDelay:
				si.drop(w) //wormvet:allow hotalloc -- drop path: per-drop cost is accepted in drop-on-delay runs
				droppedAny = true
			case si.faultRetriable(w, slotEdge):
				// Dead first edge, header still at the source: one stall
				// for the failed attempt (as the naive scan charges), then
				// back to the pending queue — or aborted — immediately, no
				// probation. Not kept: the worm left the active list.
				w.stalls++
				si.totalStalls++
				si.faultRetry(w) //wormvet:allow hotalloc -- fault-retry path: per-retry cost accepted under an outage
				faultActed = true
			case slotEdge >= 0 && w.streak >= si.parkStreak-1:
				w.streak = 0
				si.park(w, k, slotEdge)
			default:
				// Probation, or a transient bandwidth block (crossing
				// capacity resets every step): retry next step.
				w.streak++
				w.stalls++
				si.totalStalls++
				keep = append(keep, k)
			}
		}
		si.active = keep
	}

	si.applyStepEnd() // folds releases, wakes parked worms on slot events
	si.now++

	if si.cfg.CheckInvariants {
		si.checkInvariants() //wormvet:allow hotalloc -- debug-gated by Config.CheckInvariants
	}

	if !moved && !droppedAny && !faultActed && anyEligible && !si.deadlockDeferred() {
		// Every eligible worm is slot-blocked and slots free only when
		// worms move; future releases cannot free slots. Frozen forever.
		// (No wake can have fired this step: wakes need slot events, and
		// slot events need an advance, a drop, or a scheduled revival —
		// ruled out here by deadlockDeferred. A fault retry or abort also
		// changed the configuration, so it too defers the verdict.)
		si.deadlocked = true
		si.stampDeadlock(order) //wormvet:allow hotalloc -- deadlock teardown: terminal, runs at most once
		si.finishAsDeadlocked() //wormvet:allow hotalloc -- deadlock teardown: terminal, runs at most once
	}
}

// park puts worm w (list entry k) on park target e's wait queue — e is
// the foreign edge, tagged with parkFlitBit when the block wants a
// shared-pool credit rather than a lane (see deep.go). The stall meter
// starts at the failed attempt just made (step si.now).
//
//wormvet:hotpath
func (si *Sim) park(w *worm, k uint64, e int32) {
	w.parkedAt = int32(si.now)
	w.waitEdge = e
	if m := si.met; m != nil {
		m.Inc(telemetry.CtrParks)
		if w.woken {
			// Woken since its last advance and parking again without
			// progress: the wake bought nothing.
			m.Inc(telemetry.CtrSpuriousWakes)
		}
	}
	w.woken = false
	if tr := si.trc; tr != nil {
		tr.Park(si.now+1, w.id, e)
	}
	switch {
	case e&parkFaultBit != 0:
		// Dead-edge wait: only the edge's revival changes the verdict, so
		// the worm sits out all slot traffic on the fault queue.
		si.heapPush(&si.faultQ[e&^parkFaultBit], k)
	case e&parkFlitBit != 0:
		si.heapPush(&si.waitQFlit[e&^parkFlitBit], k)
	default:
		si.heapPush(&si.waitQ[e], k)
	}
	si.parked++
}

// clearParkQueue empties the queue worm w is parked on (deadlock
// teardown).
func (si *Sim) clearParkQueue(w *worm) {
	switch e := w.waitEdge; {
	case e&parkFaultBit != 0:
		si.faultQ[e&^parkFaultBit] = si.faultQ[e&^parkFaultBit][:0]
	case e&parkFlitBit != 0:
		si.waitQFlit[e&^parkFlitBit] = si.waitQFlit[e&^parkFlitBit][:0]
	default:
		si.waitQ[e] = si.waitQ[e][:0]
	}
}

// wakeEdge runs after a slot event on edge e folded into occupancy. It
// wakes the free-slot count of best-priority waiters — the only ones
// that could win a grant next step. Any lower-priority waiter would
// still fail: the woken worms and the rest of the active list are all
// ahead of it in arbitration order, so by its turn either every free
// slot on e is granted or e's crossing capacity is exhausted, both of
// which fail its attempt exactly as parking assumes. The missing case —
// a higher-priority contender declining its slot by failing bandwidth on
// some *other* edge of its crossed interval — cannot happen when
// cap == B: a worm holds a buffer slot on every body edge it would
// cross, so at most B−1 rivals can cross such an edge and its body
// flits never fail. Under RestrictedBandwidth (cap < B) that argument
// breaks, so the whole queue wakes instead; likewise under ArbRandom,
// whose per-step shuffle gives every waiter a shot at any arbitration
// position (its waiters never left the active list, so waking is just
// unparking). When the event leaves the edge full — grants outweighed
// releases — laneFree is zero, nobody can grant next step, and nobody
// wakes.
//
// Stalls accrued through the current step are stamped on wake: the worm
// would have failed this step too, since slot events fold in only at
// step end. Under the deterministic policies woken worms are batched for
// one sorted merge back into the active list.
//
//wormvet:hotpath
func (si *Sim) wakeEdge(e int32) {
	if si.deepMode {
		si.wakeEdgeDeep(e)
		return
	}
	q := &si.waitQ[e]
	if si.cfg.Arbitration == ArbRandom {
		for _, k := range *q {
			si.stampParked(k, int32(si.now))
		}
		*q = (*q)[:0]
		return
	}
	if si.cap < si.b || si.mixedFinal {
		// Whole-queue wake, for the configurations where a woken worm can
		// decline its credit. mixedFinal: some edge serves as one
		// message's final edge and another's body edge, so a final-edge
		// crossing (which holds no slot) can saturate a woken worm's body
		// edge and fail it on bandwidth even at cap == B.
		for _, k := range *q {
			si.stampParked(k, int32(si.now))
			si.wokenScratch = append(si.wokenScratch, k)
		}
		*q = (*q)[:0]
		return
	}
	for free := si.laneFree[e]; free > 0 && len(*q) > 0; free-- {
		k := si.heapPop(q)
		si.stampParked(k, int32(si.now))
		si.wokenScratch = append(si.wokenScratch, k)
	}
}

// wakeEdgeDeep wakes edge e's deep-mode waiters whose resume condition
// now holds — and, under the deterministic policies, only the top of
// each queue up to the freed credit count. The count rule is sound in
// deep mode for a sharper reason than the rigid engine's: a parked deep
// worm moved nothing since parking, so its next attempt is decided
// entirely by its one blocked flit, whose only checks are the credit on
// e and bandwidth on e itself. A woken waiter therefore declines its
// credit only by failing e's bandwidth — and bandwidth consumption is
// monotone within a step, so the first decline dooms every lower-
// priority waiter on e too. Either the freed credits are consumed by
// the woken top (and lower waiters would fail the credit check), or a
// decline proves e's bandwidth exhausted (and lower waiters would fail
// that) — un-woken waiters fail either way, exactly as the park
// invariant promises. In shared mode a lane winner also consumes pool
// credits ahead of flit-queue waiters, but that only turns woken
// waiters into harmless re-parkers, never lets an un-woken one win.
//
// A queue whose resume condition is false post-fold (the lane, or pool,
// is still exhausted) stays parked entirely: waking it on unrelated
// credit traffic is what made contended deep edges thrash their whole
// backlog awake every step. ArbRandom keeps whole-queue unparks — its
// per-step shuffle gives every waiter a shot at any arbitration
// position, so no priority argument applies (its waiters never left
// the active list; waking is just unparking).
//
//wormvet:hotpath
func (si *Sim) wakeEdgeDeep(e int32) {
	random := si.cfg.Arbitration == ArbRandom
	if q := &si.waitQ[e]; len(*q) > 0 && si.laneFree[e] > 0 && (!si.shared || si.flitFree[e] > 0) {
		if random {
			for _, k := range *q {
				si.stampParked(k, int32(si.now))
			}
			*q = (*q)[:0]
		} else {
			for free := si.laneFree[e]; free > 0 && len(*q) > 0; free-- {
				k := si.heapPop(q)
				si.stampParked(k, int32(si.now))
				si.wokenScratch = append(si.wokenScratch, k)
			}
		}
	}
	if si.waitQFlit == nil {
		return
	}
	if q := &si.waitQFlit[e]; len(*q) > 0 && si.flitFree[e] > 0 {
		if random {
			for _, k := range *q {
				si.stampParked(k, int32(si.now))
			}
			*q = (*q)[:0]
		} else {
			for free := si.flitFree[e]; free > 0 && len(*q) > 0; free-- {
				k := si.heapPop(q)
				si.stampParked(k, int32(si.now))
				si.wokenScratch = append(si.wokenScratch, k)
			}
		}
	}
}

// flushParked returns every parked worm to the active list. It runs
// exactly once per Sim, between steps, when an injection flips the
// edge-role classification to mixed: the free-slot-count reasoning that
// justified leaving lower-priority waiters parked no longer holds, so
// all of them get their attempt back. Stalls are stamped through the
// last completed step (si.now already names the upcoming one); each
// worm re-fails and re-parks naturally if it is still blocked.
func (si *Sim) flushParked() {
	for e := range si.waitQ {
		q := si.waitQ[e]
		if len(q) == 0 {
			continue
		}
		for _, k := range q {
			si.stampParked(k, int32(si.now)-1)
			if si.cfg.Arbitration != ArbRandom {
				// ArbRandom waiters never left the active list; the
				// deterministic policies re-insert at policy position.
				si.insertActive(k)
			}
		}
		si.waitQ[e] = q[:0]
	}
}

// heapPush and heapPop maintain waitQ[e] as a binary min-heap of policy
// keys — pure integer sifts, no worm lookups — keeping park at
// O(log queue) and a slot event at O(slots·log queue) instead of
// O(queue).
//
//wormvet:hotpath
func (si *Sim) heapPush(q *[]uint64, k uint64) {
	*q = append(*q, k)
	h := *q
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if k >= h[p] {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	*q = h
}

//wormvet:hotpath
func (si *Sim) heapPop(q *[]uint64) uint64 {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r] < h[l] {
			m = r
		}
		if h[m] >= h[i] {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	*q = h
	return top
}

// stampParked credits the worm behind list entry k with one stall for
// every step in [parkedAt, through] — the steps its advance attempt would
// have failed — and unparks it.
//
//wormvet:hotpath
func (si *Sim) stampParked(k uint64, through int32) {
	w := si.wormK(k)
	stall := through - w.parkedAt + 1
	w.stalls += stall
	si.totalStalls += int(stall)
	if m := si.met; m != nil {
		// The whole parked span is attributed to the edge (and credit kind)
		// the worm was waiting on — these are the steps its attempt would
		// have failed there.
		m.Inc(telemetry.CtrWakes)
		cause := telemetry.CtrStallLaneCredit
		e := w.waitEdge
		switch {
		case e&parkFaultBit != 0:
			cause = telemetry.CtrStallFault
			e &^= parkFaultBit
		case e&parkFlitBit != 0:
			cause = telemetry.CtrStallSharedPool
			e &^= parkFlitBit
		}
		// The park-step attempt itself was already recorded by tryMove's
		// EdgeStall, so only the remaining parked steps are added here —
		// keeping the stall counters in lockstep with Result.TotalStalls.
		m.StallSpan(cause, e, int64(stall)-1)
	}
	if tr := si.trc; tr != nil {
		tr.Wake(int(through)+1, w.id, w.waitEdge)
	}
	w.woken = true
	w.parkedAt = -1
	si.parked--
	// A woken worm skips the park probation: its block is already proven
	// long-lived, so the first post-wake failure re-parks it immediately.
	// This is what keeps whole-queue wakes (deep mode, restricted
	// bandwidth, mixed final/body edges) from thrashing — without it,
	// every wake buys each non-winning waiter a full fresh probation of
	// futile scans. Like ParkStreak itself, this is pure mechanism:
	// results are byte-identical (pinned by the park-hysteresis and
	// differential suites).
	w.streak = si.parkStreak - 1
}

// mergeWoken folds this step's woken worms back into the active list
// with one sorted merge: O(woken·log woken + active), versus the
// quadratic cost of inserting a long wait queue one worm at a time.
//
//wormvet:hotpath
func (si *Sim) mergeWoken() {
	woken := si.wokenScratch
	if len(woken) == 0 {
		return
	}
	slices.Sort(woken) //wormvet:allow hotalloc -- in-place sort of the woken batch
	a := si.active
	merged := si.mergeScratch[:0]
	i, j := 0, 0
	for i < len(a) && j < len(woken) {
		if a[i] < woken[j] {
			merged = append(merged, a[i])
			i++
		} else {
			merged = append(merged, woken[j])
			j++
		}
	}
	merged = append(merged, a[i:]...)
	merged = append(merged, woken[j:]...)
	// Swap buffers: the old active backing becomes the next merge buffer.
	si.active, si.mergeScratch = merged, a[:0]
	si.wokenScratch = woken[:0]
}

// insertActive inserts policy key k into the active list at its policy
// position; the common case — k belongs at the end — is O(1). Used for
// admissions; wakes go through mergeWoken in batches.
//
//wormvet:hotpath
func (si *Sim) insertActive(k uint64) {
	a := si.active
	if n := len(a); n == 0 || a[n-1] < k {
		si.active = append(si.active, k)
		return
	}
	pos := sort.Search(len(a), func(i int) bool { return k < a[i] }) //wormvet:allow hotalloc -- binary search; the closure does not escape (escape harness)
	a = append(a, 0)
	copy(a[pos+1:], a[pos:])
	a[pos] = k
	si.active = a
}

// stampDeadlock finalizes a detected deadlock. Every in-flight worm is
// blocked — parked on a full edge, or bandwidth-stalled in the active
// list — so parked worms' accrued stalls are stamped (through the
// detecting step, si.now-1 post-increment) and the blocked set is
// reported in the detecting step's arbitration order, matching the list
// the naive scan builds as its worms fail one by one.
func (si *Sim) stampDeadlock(order []uint64) {
	if si.cfg.Arbitration == ArbRandom {
		// order is this step's shuffle over the full active list; with
		// nothing moved or dropped, every entry is blocked.
		si.blockedIDs = make([]message.ID, len(order))
		for i, k := range order {
			si.blockedIDs[i] = message.ID(uint32(k))
			if w := si.wormK(k); w.parkedAt >= 0 {
				si.clearParkQueue(w)
				si.stampParked(k, int32(si.now)-1)
			}
		}
		return
	}
	// Blocked set = bandwidth-stalled survivors still on the active list
	// plus every parked worm, in policy (= key) order.
	blocked := make([]uint64, 0, len(si.active)+si.parked)
	blocked = append(blocked, si.active...)
	for i := 0; i < si.numWorms; i++ {
		if w := si.worm(i); w.parkedAt >= 0 {
			blocked = append(blocked, w.key)
		}
	}
	slices.Sort(blocked)
	si.blockedIDs = make([]message.ID, len(blocked))
	for i, k := range blocked {
		si.blockedIDs[i] = message.ID(uint32(k))
		if w := si.wormK(k); w.parkedAt >= 0 {
			si.clearParkQueue(w)
			si.stampParked(k, int32(si.now)-1)
		}
	}
}
