package vcsim

// Differential tests pinning the blocked-worm wakeup engine to the
// retained naive scan (Config.NaiveScan): every observable of a run —
// aggregates, per-message stats including lazily stamped stalls, blocked
// IDs at deadlock — must be byte-identical between the two steppers,
// under every policy, both models, staggered releases, and drop-on-delay.
// The naive scan is the obviously correct implementation (it literally
// re-attempts every active worm every step), so any divergence is a
// wakeup-engine bug: a worm skipped in a step where it could have moved,
// a stall span stamped short or long, or a wake that reordered
// arbitration.

import (
	"reflect"
	"testing"
	"testing/quick"

	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/topology"
)

// runBoth executes the workload under both steppers and fails the test on
// any difference in the full Result.
func runBoth(t *testing.T, label string, set *message.Set, releases []int, cfg Config) {
	t.Helper()
	naiveCfg := cfg
	naiveCfg.NaiveScan = true
	wake := Run(set, releases, cfg)
	naive := Run(set, releases, naiveCfg)
	if !reflect.DeepEqual(wake, naive) {
		t.Fatalf("%s: wakeup and naive results differ\nwakeup: %+v\n naive: %+v", label, wake, naive)
	}
}

// TestWakeupMatchesNaiveRandomized is the broad property check: random
// butterfly workloads with staggered releases across the whole config
// space, including ArbRandom (whose shuffle stream the wakeup engine must
// consume identically).
func TestWakeupMatchesNaiveRandomized(t *testing.T) {
	for _, pol := range []Policy{ArbByID, ArbRandom, ArbAge} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			f := func(seed uint64) bool {
				r := rng.New(seed)
				n := 8 << (seed % 2)
				bf := topology.NewButterfly(n)
				set := message.NewSet(bf.G)
				var releases []int
				m := 2 + r.Intn(4*n)
				for i := 0; i < m; i++ {
					src, dst := r.Intn(n), r.Intn(n)
					set.Add(bf.Input(src), bf.Output(dst), 1+r.Intn(8), bf.Route(src, dst))
					releases = append(releases, r.Intn(30))
				}
				// Both model axes are forced, not sampled: the restricted
				// model has its own wake rule (a waiter can decline a slot
				// by failing bandwidth on a body edge), so every seed must
				// exercise it.
				for _, restricted := range []bool{false, true} {
					for _, drop := range []bool{false, true} {
						cfg := Config{
							VirtualChannels:     1 + r.Intn(3),
							RestrictedBandwidth: restricted,
							DropOnDelay:         drop,
							Arbitration:         pol,
							Seed:                seed,
							CheckInvariants:     true,
						}
						naiveCfg := cfg
						naiveCfg.NaiveScan = true
						wake := Run(set, releases, cfg)
						naive := Run(set, releases, naiveCfg)
						if !reflect.DeepEqual(wake, naive) {
							t.Logf("seed %d restricted=%v drop=%v: wakeup %+v naive %+v",
								seed, restricted, drop, wake, naive)
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWakeupMatchesNaiveDeepContention drives the regime the wakeup
// engine was built for — far more worms than channels on a shared path,
// with parked spans much longer than the probation streak — and checks
// the lazily stamped stalls agree exactly.
func TestWakeupMatchesNaiveDeepContention(t *testing.T) {
	for _, b := range []int{1, 2, 3} {
		for _, restricted := range []bool{false, true} {
			for _, pol := range []Policy{ArbByID, ArbRandom, ArbAge} {
				set := lineSet(t, 40, 5, 7)
				runBoth(t, pol.String(), set, nil, Config{
					VirtualChannels:     b,
					RestrictedBandwidth: restricted,
					Arbitration:         pol,
					Seed:                7,
					CheckInvariants:     true,
				})
			}
		}
	}
}

// TestWakeupMatchesNaiveStaggeredDrop covers the staggered-release /
// drop-on-delay workload: releases interleave with (and during) blocked
// episodes, and drops release buffer slots that must wake waiters.
func TestWakeupMatchesNaiveStaggeredDrop(t *testing.T) {
	r := rng.New(11)
	bf := topology.NewButterfly(16)
	for trial := 0; trial < 20; trial++ {
		set := message.NewSet(bf.G)
		var releases []int
		for i := 0; i < 24; i++ {
			src, dst := r.Intn(16), r.Intn(16)
			set.Add(bf.Input(src), bf.Output(dst), 2+r.Intn(6), bf.Route(src, dst))
			releases = append(releases, (i%6)*4) // staggered waves
		}
		for _, drop := range []bool{false, true} {
			for _, restricted := range []bool{false, true} {
				for _, pol := range []Policy{ArbByID, ArbAge} {
					runBoth(t, pol.String(), set, releases, Config{
						VirtualChannels:     1 + trial%3,
						RestrictedBandwidth: restricted,
						DropOnDelay:         drop,
						Arbitration:         pol,
						CheckInvariants:     true,
					})
				}
			}
		}
	}
}

// TestWakeupMatchesNaiveDeadlock checks the terminal path: stall stamping
// at deadlock detection and the BlockedIDs report, which the wakeup
// engine reconstructs from its wait queues rather than accumulating.
func TestWakeupMatchesNaiveDeadlock(t *testing.T) {
	set := deadlockSet()
	for _, b := range []int{1, 2} {
		for _, restricted := range []bool{false, true} {
			for _, pol := range []Policy{ArbByID, ArbRandom, ArbAge} {
				runBoth(t, pol.String(), set, nil, Config{
					VirtualChannels:     b,
					RestrictedBandwidth: restricted,
					Arbitration:         pol,
					Seed:                3,
					CheckInvariants:     true,
				})
			}
		}
	}
	// Deadlock reached with worms parked well before the freeze (released
	// latecomers keep the network moving past the probation streak).
	g := set.G
	bigger := message.NewSet(g)
	for i := 0; i < set.Len(); i++ {
		m := set.Get(message.ID(i))
		bigger.Add(m.Src, m.Dst, m.Length, m.Path)
	}
	runBoth(t, "staggered-deadlock", bigger, []int{0, 12}, Config{
		VirtualChannels: 1,
		Arbitration:     ArbAge,
		CheckInvariants: true,
	})
}

// TestWakeupMatchesNaiveLockstep pins mid-run observability: the two
// engines are stepped side by side through the incremental API and their
// Result snapshots — which must fold in pending lazy stall credit — are
// compared after every single step.
func TestWakeupMatchesNaiveLockstep(t *testing.T) {
	r := rng.New(23)
	bf := topology.NewButterfly(8)
	msgs := make([]message.Message, 0, 30)
	releases := make([]int, 0, 30)
	for i := 0; i < 30; i++ {
		src, dst := r.Intn(8), r.Intn(8)
		msgs = append(msgs, message.Message{
			Src: bf.Input(src), Dst: bf.Output(dst), Length: 3 + r.Intn(4), Path: bf.Route(src, dst),
		})
		releases = append(releases, r.Intn(40))
	}
	for _, pol := range []Policy{ArbByID, ArbRandom, ArbAge} {
		cfg := Config{VirtualChannels: 1, Arbitration: pol, Seed: 5, MaxSteps: 4096, CheckInvariants: true}
		naiveCfg := cfg
		naiveCfg.NaiveScan = true
		wake, err := NewSim(bf.G, cfg)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := NewSim(bf.G, naiveCfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range msgs {
			if _, err := wake.Inject(m, releases[i]); err != nil {
				t.Fatal(err)
			}
			if _, err := naive.Inject(m, releases[i]); err != nil {
				t.Fatal(err)
			}
		}
		for step := 0; wake.Active() > 0 && step < 4096; step++ {
			errW := wake.Step()
			errN := naive.Step()
			if (errW == nil) != (errN == nil) {
				t.Fatalf("%s step %d: error mismatch: wakeup %v, naive %v", pol, step, errW, errN)
			}
			rw, rn := wake.Result(), naive.Result()
			if !reflect.DeepEqual(rw, rn) {
				t.Fatalf("%s step %d: snapshots differ\nwakeup: %+v\n naive: %+v", pol, step, rw, rn)
			}
			if errW != nil {
				break
			}
		}
	}
}

// TestStepZeroAllocSteadyState asserts the wakeup hot loop is
// allocation-free once warm: stepping a contended network (movers, parked
// worms, wakes, re-parks) must not allocate at all.
func TestStepZeroAllocSteadyState(t *testing.T) {
	g := topology.NewLinearArray(7)
	route := message.ShortestPathRouter(g)
	sim, err := NewSim(g, Config{VirtualChannels: 2, Arbitration: ArbAge, MaxSteps: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	msg := message.Message{Src: 0, Dst: graph.NodeID(6), Length: 5, Path: route(0, graph.NodeID(6))}
	for i := 0; i < 600; i++ {
		if _, err := sim.Inject(msg, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the scratch buffers and wait-queue capacity.
	for i := 0; i < 200; i++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(400, func() {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocates %.2f times per step, want 0", allocs)
	}
}

// TestWakeupMatchesNaiveRestrictedBodyBlock is the directed regression
// for the restricted-model wake rule. Construction (B=2, cap=1, ArbByID):
// worms O1/O2 fill edge E's buffer and sit blocked at F behind the long
// worm Z; waiters W1 < W2 park on E after probation. When Z drains, O1
// advances and releases one slot of E. A free-slot-count wake would rouse
// only W1 — but W1's advance also crosses its body edge p→u, where the
// long worm X (earlier in ID order) is streaming flits, so W1 fails on
// *bandwidth* and grants nothing, while the naive scan advances W2
// through the still-free slot. The wakeup engine must therefore wake the
// whole queue when cap < B.
func TestWakeupMatchesNaiveRestrictedBodyBlock(t *testing.T) {
	set, releases := restrictedBodyBlockSet()
	runBoth(t, "restricted-body-block", set, releases, Config{
		VirtualChannels:     2,
		RestrictedBandwidth: true,
		Arbitration:         ArbByID,
		CheckInvariants:     true,
	})
}

// restrictedBodyBlockSet builds the decline-scenario workload described
// above TestWakeupMatchesNaiveRestrictedBodyBlock. The deep-buffer
// differential tests reuse it across the (LaneDepth, SharedPool) grid,
// where a woken worm can decline its credit the same way.
func restrictedBodyBlockSet() (*message.Set, []int) {
	g := graph.New(0, 0)
	u := g.AddNode("u")
	v := g.AddNode("v")
	w := g.AddNode("w")
	p := g.AddNode("p")
	q := g.AddNode("q")
	zs := g.AddNode("zs")
	zt := g.AddNode("zt")
	o1s := g.AddNode("o1s")
	o1t := g.AddNode("o1t")
	o2s := g.AddNode("o2s")
	o2t := g.AddNode("o2t")
	xs := g.AddNode("xs")
	xt := g.AddNode("xt")
	w1s := g.AddNode("w1s")
	w1t := g.AddNode("w1t")
	w2s := g.AddNode("w2s")
	w2t := g.AddNode("w2t")

	e := g.AddEdge(u, v)      // the contended edge E
	f := g.AddEdge(v, w)      // downstream edge F
	ePU := g.AddEdge(p, u)    // W1's body edge, shared with X
	eQU := g.AddEdge(q, u)    // W2's private body edge
	eZin := g.AddEdge(zs, v)  // Z's approach
	eZout := g.AddEdge(w, zt) // Z's exit
	eO1in := g.AddEdge(o1s, u)
	eO1out := g.AddEdge(w, o1t)
	eO2in := g.AddEdge(o2s, u)
	eO2out := g.AddEdge(w, o2t)
	eXin := g.AddEdge(xs, p)
	eXout := g.AddEdge(u, xt)
	eW1in := g.AddEdge(w1s, p)
	eW1out := g.AddEdge(v, w1t)
	eW2in := g.AddEdge(w2s, q)
	eW2out := g.AddEdge(v, w2t)

	set := message.NewSet(g)
	set.Add(zs, zt, 30, graph.Path{eZin, f, eZout})         // Z  (id 0)
	set.Add(o1s, o1t, 2, graph.Path{eO1in, e, f, eO1out})   // O1 (id 1)
	set.Add(o2s, o2t, 2, graph.Path{eO2in, e, f, eO2out})   // O2 (id 2)
	set.Add(xs, xt, 25, graph.Path{eXin, ePU, eXout})       // X  (id 3)
	set.Add(w1s, w1t, 3, graph.Path{eW1in, ePU, e, eW1out}) // W1 (id 4)
	set.Add(w2s, w2t, 3, graph.Path{eW2in, eQU, e, eW2out}) // W2 (id 5)
	return set, []int{0, 0, 0, 20, 0, 0}
}
