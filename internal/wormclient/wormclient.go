// Package wormclient is a small retrying HTTP client for the wormholed
// API, used by the e2e and chaos harnesses (and usable by any tenant).
//
// The retry discipline is deliberately narrow:
//
//   - transport errors (connection refused while a daemon restarts,
//     resets mid-kill) and 5xx responses are retried with capped,
//     jittered exponential backoff;
//   - 4xx responses are never retried — the request is wrong, and
//     resending it can only waste the server's admission budget. The one
//     nuance is 429, which is returned to the caller immediately too:
//     the daemon's Retry-After is advice for a scheduler, not license
//     for a library to spin;
//   - every attempt and every backoff sleep respects the caller's
//     context, so a deadline bounds the whole exchange, not one try.
//
// Responses are returned as (status, body) with a typed *StatusError for
// non-2xx, so callers can branch on the code without string matching.
package wormclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// StatusError is the typed non-2xx result: the final attempt's status
// and (bounded) body.
type StatusError struct {
	Code int
	Body []byte
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("wormclient: HTTP %d: %s", e.Code, e.Body)
}

// maxErrBody bounds how much of an error response is retained.
const maxErrBody = 4 << 10

// Client talks to one wormholed base URL. The zero value is not usable;
// call New.
type Client struct {
	base string
	http *http.Client

	maxAttempts int
	backoff     time.Duration
	backoffCap  time.Duration

	mu  sync.Mutex
	rnd *rand.Rand // jitter source; seeded for reproducible harnesses
}

// Option adjusts a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying transport.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// WithRetry sets the attempt budget and backoff window. attempts counts
// total tries (1 = no retries); backoff doubles per retry up to cap.
func WithRetry(attempts int, backoff, cap time.Duration) Option {
	return func(c *Client) {
		c.maxAttempts = attempts
		c.backoff = backoff
		c.backoffCap = cap
	}
}

// WithJitterSeed fixes the jitter RNG, making backoff sequences
// reproducible in tests.
func WithJitterSeed(seed int64) Option {
	return func(c *Client) { c.rnd = rand.New(rand.NewSource(seed)) }
}

// New returns a client for the wormholed at base (e.g.
// "http://127.0.0.1:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:        base,
		http:        &http.Client{Timeout: 30 * time.Second},
		maxAttempts: 5,
		backoff:     50 * time.Millisecond,
		backoffCap:  2 * time.Second,
		rnd:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// retryable reports whether an attempt outcome warrants another try.
func retryable(code int, err error) bool {
	if err != nil {
		return true // transport-level: refused, reset, daemon mid-restart
	}
	return code >= 500
}

// sleep waits one jittered backoff slot or until ctx is done.
func (c *Client) sleep(ctx context.Context, attempt int) error {
	d := c.backoff << attempt
	if d > c.backoffCap {
		d = c.backoffCap
	}
	// Uniform jitter over [d/2, d): desynchronizes competing clients
	// without ever collapsing the wait to zero.
	c.mu.Lock()
	d = d/2 + time.Duration(c.rnd.Int63n(int64(d/2)+1))
	c.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do issues method path with body, retrying per the client's policy.
// On 2xx it returns the response body; otherwise a *StatusError (non-2xx
// after retries are exhausted or ineligible) or the last transport
// error.
func (c *Client) Do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, attempt-1); err != nil {
				return nil, err
			}
		}
		blob, code, err := c.once(ctx, method, path, body)
		switch {
		case err == nil && code < 300:
			return blob, nil
		case err != nil:
			if ctx.Err() != nil {
				return nil, err
			}
			lastErr = err
		default:
			if len(blob) > maxErrBody {
				blob = blob[:maxErrBody]
			}
			lastErr = &StatusError{Code: code, Body: blob}
			if !retryable(code, nil) {
				return nil, lastErr // 4xx: resending the same request can't help
			}
		}
	}
	return nil, lastErr
}

func (c *Client) once(ctx context.Context, method, path string, body []byte) ([]byte, int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return blob, resp.StatusCode, nil
}

// GetJSON GETs path and decodes the response into out.
func (c *Client) GetJSON(ctx context.Context, path string, out any) error {
	blob, err := c.Do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	return json.Unmarshal(blob, out)
}

// PostJSON POSTs in as JSON to path and, when out is non-nil, decodes
// the response into it.
func (c *Client) PostJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	blob, err := c.Do(ctx, http.MethodPost, path, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(blob, out)
}

// Get GETs path and returns the raw body.
func (c *Client) Get(ctx context.Context, path string) ([]byte, error) {
	return c.Do(ctx, http.MethodGet, path, nil)
}

// IsStatus reports whether err is a *StatusError with the given code.
func IsStatus(err error, code int) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == code
}
