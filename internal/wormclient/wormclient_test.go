package wormclient

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func testClient(base string) *Client {
	return New(base,
		WithRetry(4, time.Millisecond, 8*time.Millisecond),
		WithJitterSeed(1))
}

// TestRetriesServerErrors: 5xx responses are retried until the server
// recovers, and the eventual success is returned.
func TestRetriesServerErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true}`)) //nolint:errcheck
	}))
	defer srv.Close()

	var out map[string]bool
	if err := testClient(srv.URL).GetJSON(context.Background(), "/x", &out); err != nil {
		t.Fatal(err)
	}
	if !out["ok"] || calls.Load() != 3 {
		t.Fatalf("ok=%v after %d calls", out["ok"], calls.Load())
	}
}

// TestNoRetryOnClientError: a 4xx is final — exactly one request, and
// the error is the typed StatusError.
func TestNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad spec", http.StatusBadRequest)
	}))
	defer srv.Close()

	_, err := testClient(srv.URL).Get(context.Background(), "/x")
	if !IsStatus(err, http.StatusBadRequest) {
		t.Fatalf("want StatusError 400, got %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("4xx was retried: %d calls", calls.Load())
	}
}

// TestNoRetryOn429: admission-cap rejections surface immediately so the
// caller's scheduler (not this library) decides when to come back.
func TestNoRetryOn429(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "full", http.StatusTooManyRequests)
	}))
	defer srv.Close()

	_, err := testClient(srv.URL).Do(context.Background(), http.MethodPost, "/jobs", []byte(`{}`))
	if !IsStatus(err, http.StatusTooManyRequests) {
		t.Fatalf("want StatusError 429, got %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("429 was retried: %d calls", calls.Load())
	}
}

// TestRetriesConnectionRefused: a dead address is retried (the daemon
// may be mid-restart); when it never comes back, the transport error
// surfaces after the attempt budget.
func TestRetriesConnectionRefused(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here now

	start := time.Now()
	_, err = testClient("http://"+addr).Get(context.Background(), "/x")
	if err != nil {
		if IsStatus(err, 0) {
			t.Fatalf("transport failure produced a StatusError: %v", err)
		}
	} else {
		t.Fatal("connect to a closed port succeeded")
	}
	// 4 attempts = 3 backoff sleeps; with a 1ms base they must have
	// actually happened (jitter keeps each ≥ d/2).
	if time.Since(start) < 1500*time.Microsecond {
		t.Fatal("attempts were not spaced by backoff")
	}
}

// TestRecoversAcrossRestart: the refused-then-alive sequence the chaos
// harness depends on — first attempts hit a dead port, a later one
// succeeds once the "daemon" is back.
func TestRecoversAcrossRestart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(5 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the client error path still passes
		}
		srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("back")) //nolint:errcheck
		})}
		go srv.Serve(ln2) //nolint:errcheck
		<-stop
		srv.Close()
	}()

	c := New("http://"+addr,
		WithRetry(20, 2*time.Millisecond, 10*time.Millisecond),
		WithJitterSeed(2))
	blob, err := c.Get(context.Background(), "/x")
	close(stop)
	<-done
	if err != nil {
		t.Skipf("port was not rebindable on this host: %v", err)
	}
	if string(blob) != "back" {
		t.Fatalf("got %q", blob)
	}
}

// TestContextDeadlineBoundsRetries: the deadline cuts the whole
// exchange, including backoff sleeps, not just one attempt.
func TestContextDeadlineBoundsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "always down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := New(srv.URL,
		WithRetry(1000, 20*time.Millisecond, 100*time.Millisecond),
		WithJitterSeed(3))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Get(ctx, "/x")
	if err == nil {
		t.Fatal("expected failure")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not bound retries: took %v", elapsed)
	}
}
