// Package wormhole is a library for analyzing and simulating wormhole
// routing with virtual channels, reproducing Cole, Maggs & Sitaraman,
// "On the Benefit of Supporting Virtual Channels in Wormhole Routers"
// (SPAA 1996; JCSS 62, 2001).
//
// The package re-exports the repository's internal building blocks as one
// coherent public API:
//
//   - networks: butterflies, two-pass butterflies, meshes, toruses,
//     hypercubes, random regular digraphs, and the paper's Theorem 2.2.1
//     adversarial construction;
//   - workloads: permutations, q-relations, random destinations, with
//     congestion/dilation analysis;
//   - the flit-level simulator of the paper's router model (B virtual
//     channels per edge, rigid worms, optional drop-on-delay and
//     restricted-bandwidth variants), with both a batch entry point and
//     an incremental, resumable Sim for streaming workloads;
//   - a steady-state open-loop traffic engine (Bernoulli / Poisson /
//     bursty injection × uniform / transpose / bit-reverse / hotspot
//     patterns, warmup/measurement/drain windows, saturation search);
//   - the Theorem 2.1.6 LLL scheduler and its verification;
//   - the Section 3.1 randomized two-pass butterfly algorithm;
//   - baselines: store-and-forward, virtual cut-through, circuit
//     switching, naive conflict-graph coloring.
//
// Quick start:
//
//	prob := wormhole.ButterflyQRelation(256, 8, 32, 42)
//	res := prob.RouteGreedy(wormhole.GreedyOptions{B: 4})
//	fmt.Println(res.Steps, res.AllDelivered())
//
// The experiment harness behind `wormbench` is exposed through
// RunExperiment; see README.md for the experiment catalogue.
package wormhole

import (
	"wormhole/internal/analysis"
	"wormhole/internal/baseline"
	"wormhole/internal/butterfly"
	"wormhole/internal/core"
	"wormhole/internal/graph"
	"wormhole/internal/lowerbound"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/routeopt"
	"wormhole/internal/schedule"
	"wormhole/internal/stats"
	"wormhole/internal/topology"
	"wormhole/internal/trace"
	"wormhole/internal/traffic"
	"wormhole/internal/vcsim"
)

// --- graph substrate ---------------------------------------------------------

// Core graph types.
type (
	// Graph is a directed multigraph of physical channels.
	Graph = graph.Graph
	// NodeID identifies a switch.
	NodeID = graph.NodeID
	// EdgeID identifies a directed physical channel.
	EdgeID = graph.EdgeID
	// Path is a directed walk of edges.
	Path = graph.Path
)

// NewGraph returns an empty graph with capacity hints.
func NewGraph(nodes, edges int) *Graph { return graph.New(nodes, edges) }

// ShortestPath BFS-routes between two nodes.
func ShortestPath(g *Graph, src, dst NodeID) (Path, bool) { return graph.ShortestPath(g, src, dst) }

// --- topologies --------------------------------------------------------------

// Network constructors (paper Section 1.2 and test fixtures).
type (
	// Butterfly is the paper's n-input butterfly network.
	Butterfly = topology.Butterfly
	// TwoPassButterfly is the unrolled back-to-back butterfly of Fig. 2.
	TwoPassButterfly = topology.TwoPassButterfly
	// Mesh is a d-dimensional mesh or torus.
	Mesh = topology.Mesh
	// Hypercube is a boolean hypercube.
	Hypercube = topology.Hypercube
)

// NewButterfly builds an n-input butterfly (n a power of two).
func NewButterfly(n int) *Butterfly { return topology.NewButterfly(n) }

// NewTwoPassButterfly builds the Figure 2 unrolled double butterfly.
func NewTwoPassButterfly(n int) *TwoPassButterfly { return topology.NewTwoPassButterfly(n) }

// NewMesh builds a mesh with the given per-dimension sizes.
func NewMesh(dims ...int) *Mesh { return topology.NewMesh(dims...) }

// NewTorus builds a torus with the given per-dimension sizes.
func NewTorus(dims ...int) *Mesh { return topology.NewTorus(dims...) }

// NewHypercube builds the hypercube on n = 2^k nodes.
func NewHypercube(n int) *Hypercube { return topology.NewHypercube(n) }

// Benes is the rearrangeable Beneš network (two back-to-back
// butterflies); RoutePermutation realizes any permutation as
// edge-disjoint paths via Waksman's looping algorithm.
type Benes = topology.Benes

// NewBenes builds the Beneš network on n = 2^k inputs.
func NewBenes(n int) *Benes { return topology.NewBenes(n) }

// Log2 returns ⌈log2 n⌉ (at least 1), the paper's message-length scale.
func Log2(n int) int { return topology.Log2(n) }

// --- workloads ---------------------------------------------------------------

// Message and workload types.
type (
	// Message is a worm: source, destination, length L, fixed path.
	Message = message.Message
	// MessageID indexes messages within a set.
	MessageID = message.ID
	// MessageSet is a routed workload over one network.
	MessageSet = message.Set
	// Endpoints is a source/destination demand before path selection.
	Endpoints = message.Endpoints
)

// NewMessageSet returns an empty workload over g.
func NewMessageSet(g *Graph) *MessageSet { return message.NewSet(g) }

// Congestion returns C, the maximum per-edge message count.
func Congestion(s *MessageSet) int { return analysis.Congestion(s) }

// Dilation returns D, the longest path length.
func Dilation(s *MessageSet) int { return analysis.Dilation(s) }

// DeadlockFree reports whether the path set's channel dependency graph is
// acyclic (Dally–Seitz condition for greedy wormhole routing).
func DeadlockFree(s *MessageSet) bool { return analysis.ChannelDependencyAcyclic(s) }

// RouteOptions tunes congestion-aware path selection.
type RouteOptions = routeopt.Options

// RouteMinMax selects near-shortest paths that avoid hot edges
// (Srinivasan–Teo-style congestion-aware selection).
func RouteMinMax(g *Graph, pairs []Endpoints, length int, opts RouteOptions) *MessageSet {
	return routeopt.GreedyMinMax(g, pairs, length, opts)
}

// Rebalance locally reroutes messages off bottleneck edges until no
// single reroute reduces congestion; it returns the reroute count and
// the final congestion.
func Rebalance(s *MessageSet, opts RouteOptions, maxRounds int) (int, int) {
	return routeopt.Rebalance(s, opts, maxRounds)
}

// --- random source -----------------------------------------------------------

// Rand is the deterministic random source used across the library.
type Rand = rng.Source

// NewRand returns a deterministic random source.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// --- simulator ---------------------------------------------------------------

// Simulator types (paper Section 1.1 model).
type (
	// SimConfig parameterizes the flit-level router simulation.
	SimConfig = vcsim.Config
	// SimResult reports a simulation run.
	SimResult = vcsim.Result
	// Policy selects header arbitration.
	Policy = vcsim.Policy
)

// Arbitration policies.
const (
	ArbByID   = vcsim.ArbByID
	ArbRandom = vcsim.ArbRandom
	ArbAge    = vcsim.ArbAge
)

// Simulate runs the message set under per-message release times (nil =
// all zero) on the paper's router model.
func Simulate(s *MessageSet, releases []int, cfg SimConfig) SimResult {
	return vcsim.Run(s, releases, cfg)
}

// Sim is the incremental (resumable) simulation engine underlying
// Simulate: messages are injected while time advances, one flit step at a
// time, which is what open-loop traffic drivers need. See vcsim.Sim for
// the lifecycle.
type Sim = vcsim.Sim

// NewSim returns an empty incremental simulator over g. cfg.MaxSteps must
// be set explicitly (vcsim.ErrNoHorizon otherwise): an open-loop run has
// no finite workload to derive a safe bound from.
func NewSim(g *Graph, cfg SimConfig) (*Sim, error) { return vcsim.NewSim(g, cfg) }

// --- open-loop traffic -------------------------------------------------------

// Open-loop traffic types (steady-state continuous injection; see
// internal/traffic for the window/process/pattern semantics).
type (
	// OpenLoopConfig parameterizes a steady-state open-loop run: network,
	// injection process × spatial pattern, offered rate, and the
	// warmup / measurement / drain windows.
	OpenLoopConfig = traffic.Config
	// OpenLoopResult reports accepted throughput and streaming latency
	// statistics (mean, p50/p95/p99) for one open-loop run.
	OpenLoopResult = traffic.Result
	// TrafficNetwork adapts a topology (endpoints, routing) for the
	// open-loop engine.
	TrafficNetwork = traffic.Network
	// SaturationOptions tunes the saturation-rate bisection.
	SaturationOptions = traffic.SearchOptions
	// SaturationResult reports the located saturation knee and the
	// bisection probes that found it.
	SaturationResult = traffic.SearchResult
)

// Injection processes.
const (
	ProcessBernoulli = traffic.Bernoulli
	ProcessPoisson   = traffic.Poisson
	ProcessOnOff     = traffic.OnOff
)

// Spatial destination patterns.
const (
	PatternUniform    = traffic.Uniform
	PatternTranspose  = traffic.Transpose
	PatternBitReverse = traffic.BitReverse
	PatternHotspot    = traffic.Hotspot
)

// NewButterflyTraffic adapts an n-input butterfly for open-loop traffic.
func NewButterflyTraffic(n int) *TrafficNetwork { return traffic.NewButterflyNet(n) }

// NewMeshTraffic adapts a mesh (dimension-order routed) for open-loop
// traffic.
func NewMeshTraffic(dims ...int) *TrafficNetwork { return traffic.NewMeshNet(dims...) }

// NewTorusTraffic adapts a torus (dimension-order routed) for open-loop
// traffic.
func NewTorusTraffic(dims ...int) *TrafficNetwork { return traffic.NewTorusNet(dims...) }

// RunOpenLoop executes one steady-state open-loop simulation: continuous
// stochastic injection through warmup and measurement windows, then a
// bounded drain. Results are deterministic in OpenLoopConfig.Seed.
func RunOpenLoop(cfg OpenLoopConfig) (OpenLoopResult, error) { return traffic.Run(cfg) }

// SaturationRate bisects the offered load to locate the network's
// saturation knee — the highest rate at which accepted throughput keeps
// up with offered load. The search is deterministic.
func SaturationRate(cfg OpenLoopConfig, opts SaturationOptions) (SaturationResult, error) {
	return traffic.SaturationRate(cfg, opts)
}

// TraceRecorder reconstructs flit-level space-time diagrams from a run;
// pass it as SimConfig.Observer, then call Render.
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns a recorder for one run over the message set.
func NewTraceRecorder(s *MessageSet) *TraceRecorder { return trace.NewRecorder(s) }

// --- scheduling (Theorem 2.1.6) ----------------------------------------------

// Scheduler types.
type (
	// Schedule is a Theorem 2.1.6 release schedule.
	Schedule = schedule.Schedule
	// ScheduleBuildOptions tunes the LLL refinement pipeline.
	ScheduleBuildOptions = schedule.Options
)

// BuildSchedule runs the Theorem 2.1.6 color-refinement pipeline.
func BuildSchedule(s *MessageSet, opts ScheduleBuildOptions, r *Rand) (*Schedule, error) {
	return schedule.Build(s, opts, r)
}

// VerifySchedule executes a schedule and checks the zero-stall guarantee.
func VerifySchedule(s *MessageSet, sched *Schedule) (SimResult, error) {
	return schedule.Verify(s, sched)
}

// NaiveSchedule builds the footnote-5 conflict-graph-coloring baseline.
func NaiveSchedule(s *MessageSet) *Schedule { return schedule.NaiveSchedule(s) }

// Closed-form bound evaluators (no hidden constants).
var (
	// UpperBound216 is Theorem 2.1.6: O((L+D)C(D log D)^(1/B)/B).
	UpperBound216 = schedule.UpperBound216
	// LowerBound221 is Theorem 2.2.1: Ω(LCD^(1/B)/B).
	LowerBound221 = schedule.LowerBound221
	// NaiveBound is footnote 5: O((L+D)CD).
	NaiveBound = schedule.NaiveBound
	// StoreAndForwardBound is Leighton–Maggs–Rao: O(L(C+D)).
	StoreAndForwardBound = schedule.StoreAndForwardBound
	// PredictedSpeedup is the paper's superlinear factor B·D^(1−1/B).
	PredictedSpeedup = schedule.PredictedSpeedup
)

// --- problems and experiments --------------------------------------------------

// Problem couples a network and a routed workload (the core facade).
type Problem = core.Problem

// Routing options.
type (
	// GreedyOptions configures online blocking wormhole routing.
	GreedyOptions = core.GreedyOptions
	// ScheduleOptions configures offline Theorem 2.1.6 routing.
	ScheduleOptions = core.ScheduleOptions
)

// NewProblem wraps an existing message set.
func NewProblem(label string, s *MessageSet) *Problem { return core.NewProblem(label, s) }

// ButterflyQRelation builds a random q-relation on an n-input butterfly.
func ButterflyQRelation(n, q, l int, seed uint64) *Problem {
	return core.ButterflyQRelation(n, q, l, seed)
}

// ButterflyRandom builds the random routing problem (q uniform messages
// per input).
func ButterflyRandom(n, q, l int, seed uint64) *Problem {
	return core.ButterflyRandom(n, q, l, seed)
}

// MeshTranspose builds the transpose permutation on a side×side mesh.
func MeshTranspose(side, l int) *Problem { return core.MeshTranspose(side, l) }

// RandomRegularWorkload builds BFS-routed random traffic on a random
// regular digraph.
func RandomRegularWorkload(nodes, deg, msgs, l int, seed uint64) *Problem {
	return core.RandomRegularWorkload(nodes, deg, msgs, l, seed)
}

// ExperimentConfig parameterizes a reproduction experiment.
type ExperimentConfig = core.Config

// ResultTable is an aligned text table of experiment results.
type ResultTable = stats.Table

// RunExperiment executes a README.md-catalogued experiment by ID (F1, F2,
// T1…T12, A1…A5). Set ExperimentConfig.Workers to fan the experiment's
// independent jobs across a worker pool; tables are byte-identical for
// any worker count.
func RunExperiment(id string, cfg ExperimentConfig) ([]*ResultTable, error) {
	return core.Run(id, cfg)
}

// Experiments lists the available experiment IDs and titles.
func Experiments() []core.Experiment { return core.Experiments() }

// --- Theorem 2.2.1 construction ------------------------------------------------

// Adversary types.
type (
	// AdversaryParams sizes the Theorem 2.2.1 instance.
	AdversaryParams = lowerbound.Params
	// Adversary is the built lower-bound instance.
	Adversary = lowerbound.Construction
)

// BuildAdversary constructs the Theorem 2.2.1 network and messages.
func BuildAdversary(p AdversaryParams) *Adversary { return lowerbound.Build(p) }

// --- Section 3 butterfly algorithms --------------------------------------------

// Butterfly-algorithm types.
type (
	// ColPair is an input-column → output-column demand.
	ColPair = butterfly.ColPair
	// QRelationParams configures the Section 3.1 algorithm.
	QRelationParams = butterfly.Params
	// QRelationResult reports a Section 3.1 run.
	QRelationResult = butterfly.Result
)

// RunQRelation executes the Section 3.1 randomized two-pass algorithm.
func RunQRelation(pairs []ColPair, p QRelationParams, r *Rand) QRelationResult {
	return butterfly.RunQRelation(pairs, p, r)
}

// RandomQRelation draws a uniform random q-relation on n columns.
func RandomQRelation(n, q int, r *Rand) []ColPair { return butterfly.RandomQRelation(n, q, r) }

// QRelationBound evaluates the Theorem 3.1.1 running-time form.
var QRelationBound = butterfly.Bound

// --- baselines -----------------------------------------------------------------

// Baseline router types.
type (
	// SAFConfig configures store-and-forward routing.
	SAFConfig = baseline.SAFConfig
	// SAFResult reports a store-and-forward run.
	SAFResult = baseline.SAFResult
	// VCTConfig configures virtual cut-through routing.
	VCTConfig = baseline.VCTConfig
	// VCTResult reports a virtual cut-through run.
	VCTResult = baseline.VCTResult
	// CircuitResult reports a circuit-switching experiment.
	CircuitResult = baseline.CircuitResult
)

// RunStoreAndForward simulates greedy FIFO store-and-forward routing.
func RunStoreAndForward(s *MessageSet, cfg SAFConfig) SAFResult {
	return baseline.RunStoreAndForward(s, cfg)
}

// LMRSchedule is a certified delay-smoothed store-and-forward schedule
// (Leighton–Maggs–Rao style, O(C+D) message steps).
type LMRSchedule = baseline.LMRSchedule

// BuildLMRSchedule rejection-samples initial delays until no edge is
// double-booked; the result moves every message without stopping.
func BuildLMRSchedule(s *MessageSet, r *Rand, maxAttempts int) (*LMRSchedule, error) {
	return baseline.BuildLMRSchedule(s, r, maxAttempts)
}

// RunVirtualCutThrough simulates cut-through routing with B-flit buffers.
func RunVirtualCutThrough(s *MessageSet, cfg VCTConfig) VCTResult {
	return baseline.RunVirtualCutThrough(s, cfg)
}

// RunCircuitSwitch performs Koch's circuit-locking experiment.
func RunCircuitSwitch(n, b int, pairs []ColPair, r *Rand) CircuitResult {
	return baseline.RunCircuitSwitch(n, b, pairs, r)
}
