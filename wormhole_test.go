package wormhole_test

import (
	"testing"

	"wormhole"
)

// These tests exercise the public facade exactly as a downstream user
// would, so the README snippets stay honest.

func TestQuickstartFlow(t *testing.T) {
	prob := wormhole.ButterflyQRelation(64, 4, 16, 42)
	if prob.C < 4 || prob.D != 6 || prob.L != 16 {
		t.Fatalf("unexpected problem parameters: C=%d D=%d L=%d", prob.C, prob.D, prob.L)
	}
	res := prob.RouteGreedy(wormhole.GreedyOptions{B: 4})
	if !res.AllDelivered() {
		t.Fatal("greedy routing failed")
	}
	sched, ver, err := prob.RouteScheduled(wormhole.ScheduleOptions{B: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if ver.TotalStalls != 0 {
		t.Error("scheduled run must be stall-free")
	}
	if sched.NumClasses < 1 {
		t.Error("schedule has no classes")
	}
}

func TestManualNetworkFlow(t *testing.T) {
	// Build a custom network through the facade alone.
	g := wormhole.NewGraph(4, 6)
	n0 := g.AddNode("a")
	n1 := g.AddNode("b")
	n2 := g.AddNode("c")
	n3 := g.AddNode("d")
	g.AddEdge(n0, n1)
	g.AddEdge(n1, n2)
	g.AddEdge(n2, n3)
	p, ok := wormhole.ShortestPath(g, n0, n3)
	if !ok || len(p) != 3 {
		t.Fatal("shortest path")
	}
	set := wormhole.NewMessageSet(g)
	set.Add(n0, n3, 8, p)
	if wormhole.Congestion(set) != 1 || wormhole.Dilation(set) != 3 {
		t.Error("analysis accessors")
	}
	if !wormhole.DeadlockFree(set) {
		t.Error("a single path is trivially deadlock-free")
	}
	res := wormhole.Simulate(set, nil, wormhole.SimConfig{VirtualChannels: 1})
	if res.Steps != 3+8-1 {
		t.Errorf("latency = %d, want D+L-1", res.Steps)
	}
}

func TestOpenLoopFacade(t *testing.T) {
	cfg := wormhole.OpenLoopConfig{
		Net:             wormhole.NewButterflyTraffic(16),
		VirtualChannels: 4,
		MessageLength:   4,
		Arbitration:     wormhole.ArbAge,
		Process:         wormhole.ProcessPoisson,
		Rate:            0.05,
		Pattern:         wormhole.PatternUniform,
		Warmup:          32,
		Measure:         128,
		Drain:           512,
		Seed:            3,
	}
	res, err := wormhole.RunOpenLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 || res.Saturated {
		t.Fatalf("low-rate open-loop run: %+v", res)
	}
	if res.MeanLatency < float64(4+4-1) {
		t.Errorf("mean latency %g below the physical floor", res.MeanLatency)
	}
	cfg.MaxBacklog = 1024
	sat, err := wormhole.SaturationRate(cfg, wormhole.SaturationOptions{Hi: 1, Iters: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sat.Rate <= 0 || len(sat.Probes) == 0 {
		t.Fatalf("saturation search: %+v", sat)
	}
}

func TestIncrementalSimFacade(t *testing.T) {
	g := wormhole.NewGraph(3, 2)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	sim, err := wormhole.NewSim(g, wormhole.SimConfig{VirtualChannels: 1, MaxSteps: 64})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := wormhole.ShortestPath(g, a, c)
	if _, err := sim.Inject(wormhole.Message{Src: a, Dst: c, Length: 2, Path: p}, 0); err != nil {
		t.Fatal(err)
	}
	for sim.Active() > 0 {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if res := sim.Result(); res.Steps != 2+2-1 || !res.AllDelivered() {
		t.Fatalf("incremental run: %+v", res)
	}
}

func TestTopologyConstructors(t *testing.T) {
	if wormhole.NewButterfly(16).Levels != 4 {
		t.Error("butterfly levels")
	}
	if wormhole.NewTwoPassButterfly(8).Levels != 3 {
		t.Error("two-pass levels")
	}
	if wormhole.NewMesh(3, 3).G.NumNodes() != 9 {
		t.Error("mesh nodes")
	}
	if wormhole.NewTorus(4).G.NumNodes() != 4 {
		t.Error("torus nodes")
	}
	if wormhole.NewHypercube(8).Dim != 3 {
		t.Error("hypercube dim")
	}
	if wormhole.Log2(1000) != 10 {
		t.Error("Log2")
	}
}

func TestAdversaryFacade(t *testing.T) {
	adv := wormhole.BuildAdversary(wormhole.AdversaryParams{
		B: 1, TargetD: 12, TargetC: 4, L: 30,
	})
	if adv.ProgressBound() <= 0 {
		t.Fatal("progress bound")
	}
	res := wormhole.Simulate(adv.Set, nil, wormhole.SimConfig{VirtualChannels: 1})
	if !res.AllDelivered() {
		t.Fatal("adversary instance must route")
	}
	if float64(res.Steps) < adv.ProgressBound() {
		t.Error("measured time beat the impossible floor")
	}
}

func TestQRelationFacade(t *testing.T) {
	r := wormhole.NewRand(7)
	pairs := wormhole.RandomQRelation(64, 4, r)
	res := wormhole.RunQRelation(pairs, wormhole.QRelationParams{
		N: 64, Q: 4, L: 6, B: 2,
	}, r)
	if !res.AllDelivered {
		t.Fatal("q-relation routing failed")
	}
	if wormhole.QRelationBound(64, 4, 6, 2) <= 0 {
		t.Error("bound evaluator")
	}
}

func TestBaselineFacades(t *testing.T) {
	prob := wormhole.ButterflyQRelation(32, 2, 8, 3)
	saf := wormhole.RunStoreAndForward(prob.Set, wormhole.SAFConfig{})
	if saf.Delivered != prob.Set.Len() {
		t.Error("SAF")
	}
	vct := wormhole.RunVirtualCutThrough(prob.Set, wormhole.VCTConfig{BufferFlits: 2})
	if vct.Delivered != prob.Set.Len() {
		t.Error("VCT")
	}
	r := wormhole.NewRand(2)
	cs := wormhole.RunCircuitSwitch(32, 2, wormhole.RandomQRelation(32, 1, r), r)
	if cs.Attempted != 32 {
		t.Error("circuit switch")
	}
}

func TestScheduleFacade(t *testing.T) {
	prob := wormhole.ButterflyQRelation(32, 4, 12, 9)
	sched, err := wormhole.BuildSchedule(prob.Set, wormhole.ScheduleBuildOptions{
		B: 2, ConstantScale: 0.05,
	}, wormhole.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wormhole.VerifySchedule(prob.Set, sched); err != nil {
		t.Fatal(err)
	}
	naive := wormhole.NaiveSchedule(prob.Set)
	if _, err := wormhole.VerifySchedule(prob.Set, naive); err != nil {
		t.Fatal(err)
	}
	// Bound evaluators are wired.
	if wormhole.UpperBound216(12, prob.C, prob.D, 2) <= 0 ||
		wormhole.LowerBound221(12, prob.C, prob.D, 2) <= 0 ||
		wormhole.NaiveBound(12, prob.C, prob.D) <= 0 ||
		wormhole.StoreAndForwardBound(12, prob.C, prob.D) <= 0 ||
		wormhole.PredictedSpeedup(prob.D, 2) <= 1 {
		t.Error("bound evaluators")
	}
}

func TestExperimentFacade(t *testing.T) {
	if len(wormhole.Experiments()) != 23 {
		t.Errorf("%d experiments", len(wormhole.Experiments()))
	}
	tables, err := wormhole.RunExperiment("F1", wormhole.ExperimentConfig{Seed: 1, Quick: true})
	if err != nil || len(tables) == 0 {
		t.Fatalf("RunExperiment: %v", err)
	}
}
